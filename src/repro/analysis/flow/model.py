"""The cross-module model project-scoped rules walk.

One :class:`ProjectModel` is built per lint run from every parsed
module (:class:`~repro.analysis.core.LintContext`).  It is deliberately
*lightweight*: everything is derived syntactically from the ASTs plus
the alias resolution :class:`~repro.analysis.core.ImportMap` already
provides -- no imports are executed, so the model builds in one pass
over the tree and is byte-deterministic regardless of file discovery
order (modules are keyed and iterated by sorted dotted name).

What the model knows:

* **Modules** -- dotted name (``src/repro/serve/app.py`` ->
  ``repro.serve.app``), module-level string constants, declared
  ``*_KEYS`` frozensets, whether the module creates threads, and every
  process-creation site (``ProcessPoolExecutor``, ``multiprocessing``).
* **Classes** -- which attributes hold locks, every ``self.attr``
  write with its enclosing method and whether it happens inside a
  ``with self.<lock>:`` region, and the class-internal ``self.m()``
  call sites (so methods only ever entered with the lock held --
  ``CircuitBreaker._trip`` -- count as locked).
* **Functions** -- a call graph over project modules (alias-resolved
  dotted callees, local calls, same-class ``self.m()`` calls) plus the
  blocking primitives each body contains, for the async-blocking and
  thread-before-fork rules.
* **Schema dicts** -- every dict literal carrying a ``"schema"`` key,
  with its resolved tag and literal key set, for the drift rule.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import ImportMap, LintContext, dotted_name

#: Wire-schema tag shape (``repro-serve-response/v1``).
SCHEMA_TAG_PATTERN = re.compile(r"^repro-[a-z0-9-]+/v\d+$")

#: Canonical ``module.Class`` tails that construct OS threads.
_THREAD_FACTORY_TAILS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "futures.ThreadPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "server.ThreadingHTTPServer",
        "http.server.ThreadingHTTPServer",
    }
)

#: Canonical tails that fork/spawn OS processes.
_PROCESS_FACTORY_TAILS = frozenset(
    {
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "futures.ProcessPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)

#: Canonical tails that construct (or are) locks for CONC001 purposes.
_LOCK_FACTORY_TAILS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Methods that run during construction, before the instance escapes to
#: other threads; writes there need no lock.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: Receiver-name fragments that mark an ``.acquire()`` target as a lock.
_LOCKISH_FRAGMENTS = ("lock", "mutex", "sem", "cond")

#: Attribute calls that are direct (blocking) file I/O.
_FILE_IO_ATTRS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes", "open"}
)


def module_name_for(rel: str) -> str:
    """Dotted module name of a display path (``src/`` stripped)."""
    parts = list(Path(rel).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return rel
    if parts[-1] == "__init__.py":
        parts = parts[:-1] or [Path(rel).parent.name or "__init__"]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _is_test_like(ctx: LintContext) -> bool:
    name = ctx.filename
    return (
        name.startswith(("test_", "bench_", "conftest"))
        or "tests" in ctx.parts
        or "benchmarks" in ctx.parts
    )


# ---------------------------------------------------------------- data classes
@dataclass
class AttrWrite:
    """One ``self.attr`` store site inside a class body."""

    attr: str
    method: str
    node: ast.AST
    locked: bool  # lexically inside a ``with self.<lock>:`` region


@dataclass
class SelfCall:
    """One ``self.method()`` call site inside a class body."""

    method: str
    caller: str
    node: ast.Call
    locked: bool


@dataclass
class ClassInfo:
    """Lock/attribute model of one class definition."""

    name: str
    module: str
    node: ast.ClassDef
    lock_attrs: set[str] = field(default_factory=set)
    methods: set[str] = field(default_factory=set)
    writes: list[AttrWrite] = field(default_factory=list)
    self_calls: list[SelfCall] = field(default_factory=list)

    def locked_methods(self) -> set[str]:
        """Private methods only ever entered with the lock held.

        Fixpoint over the class-internal call sites: ``m`` qualifies
        when it has at least one ``self.m()`` caller and every one of
        them is lexically locked or sits inside an already-qualified
        method.  Dunder and public methods never qualify -- external
        callers can reach them lock-free.
        """
        sites: dict[str, list[SelfCall]] = {}
        for call in self.self_calls:
            sites.setdefault(call.method, []).append(call)
        locked: set[str] = set()
        changed = True
        while changed:
            changed = False
            for method in sorted(self.methods):
                if method in locked or not method.startswith("_"):
                    continue
                if method.startswith("__") and method.endswith("__"):
                    continue
                calls = sites.get(method)
                if not calls:
                    continue
                if all(c.locked or c.caller in locked for c in calls):
                    locked.add(method)
                    changed = True
        return locked


@dataclass
class BlockingCall:
    """One blocking primitive found in a function body."""

    node: ast.AST
    what: str


@dataclass
class FunctionInfo:
    """One function or method, with its calls and blocking primitives.

    ``calls`` holds direct call sites; ``refs`` holds function
    references passed as call arguments (``pool.submit(fn, x)``,
    ``Thread(target=fn)``).  CONC003 reachability follows both --
    a reference handed to an executor does run; CONC002 follows only
    direct calls, since handing blocking work to an executor is exactly
    the sanctioned pattern.
    """

    module: str
    qualname: str  # ``func`` or ``Class.method``
    cls: str | None
    node: ast.AST
    is_async: bool
    calls: list[tuple[str, ast.Call]] = field(default_factory=list)
    refs: list[tuple[str, ast.Call]] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)


@dataclass
class ProcessSite:
    """One process-creation call site."""

    node: ast.Call
    factory: str  # canonical dotted factory name
    function: str | None  # enclosing function qualname (None = module level)
    pinned: bool  # carries an explicit mp context


@dataclass
class SchemaDict:
    """One dict literal carrying a ``"schema"`` key."""

    node: ast.Dict
    tag_expr: ast.expr
    literal_keys: frozenset[str]
    dynamic_keys: bool
    function: str | None


@dataclass
class ModuleInfo:
    """Everything the project rules need to know about one module."""

    name: str
    ctx: LintContext
    imports: ImportMap
    is_test: bool
    constants: dict[str, str] = field(default_factory=dict)
    key_sets: dict[str, frozenset[str]] = field(default_factory=dict)
    key_set_nodes: dict[str, ast.AST] = field(default_factory=dict)
    mp_context_aliases: set[str] = field(default_factory=set)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    creates_threads: bool = False
    process_sites: list[ProcessSite] = field(default_factory=list)
    schema_dicts: list[SchemaDict] = field(default_factory=list)


# ------------------------------------------------------------------- visitors
def _self_attr(node: ast.expr) -> str | None:
    """``attr`` for an ``self.attr`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _write_targets(node: ast.stmt) -> Iterator[ast.expr]:
    """The store-target expressions of an assignment statement."""
    if isinstance(node, ast.Assign):
        targets: Iterable[ast.expr] = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from target.elts
        else:
            yield target


def _written_self_attr(target: ast.expr) -> str | None:
    """The instance attribute a store target mutates, if any.

    Covers plain stores (``self.x = ...``) and container-element stores
    (``self.x[k] = ...``), which mutate the object behind ``self.x``.
    """
    attr = _self_attr(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Subscript):
        return _self_attr(target.value)
    return None


def _tail(canonical: str, n: int = 2) -> str:
    return ".".join(canonical.split(".")[-n:])


def _call_is_lock_factory(canonical: str | None) -> bool:
    return canonical is not None and (
        canonical in _LOCK_FACTORY_TAILS or _tail(canonical) in _LOCK_FACTORY_TAILS
    )


def _name_is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _LOCKISH_FRAGMENTS)


class _MethodScan(ast.NodeVisitor):
    """Walk one method body tracking ``with self.<lock>:`` nesting.

    Nested function/lambda bodies are skipped: they execute later, when
    the lexical lock region gives no guarantee.
    """

    def __init__(self, info: ClassInfo, method: str) -> None:
        self.info = info
        self.method = method
        self.depth = 0

    # -- lock regions
    def _item_locks(self, items: list[ast.withitem]) -> bool:
        return any(
            (attr := _self_attr(item.context_expr)) is not None
            and attr in self.info.lock_attrs
            for item in items
        )

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = self._item_locks(node.items)
        if locked:
            self.depth += 1
        self.generic_visit(node)
        if locked:
            self.depth -= 1

    # -- stores and self-calls
    def _record_writes(self, node: ast.stmt) -> None:
        for target in _write_targets(node):
            attr = _written_self_attr(target)
            if attr is None or attr in self.info.lock_attrs:
                continue
            self.info.writes.append(
                AttrWrite(
                    attr=attr,
                    method=self.method,
                    node=node,
                    locked=self.depth > 0,
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_writes(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_writes(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_writes(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        attr = _self_attr(node.func)
        if attr is not None:
            self.info.self_calls.append(
                SelfCall(
                    method=attr,
                    caller=self.method,
                    node=node,
                    locked=self.depth > 0,
                )
            )
        self.generic_visit(node)

    # -- do not descend into deferred bodies
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def _scan_blocking(
    body: ast.AST, imports: ImportMap
) -> tuple[
    list[tuple[str, ast.Call]],
    list[tuple[str, ast.Call]],
    list[BlockingCall],
]:
    """Collect (call, reference, blocking) triples for one function body.

    Calls whose result is immediately awaited are not blocking (the
    callee is an awaitable variant, e.g. ``asyncio.Lock.acquire``).
    Nested function bodies are skipped -- they belong to the nested
    function's own entry.
    """
    calls: list[tuple[str, ast.Call]] = []
    refs: list[tuple[str, ast.Call]] = []
    blocking: list[BlockingCall] = []
    awaited: set[int] = set()
    skip: set[int] = set()

    for node in ast.walk(body):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            awaited.add(id(node.value))
        if (
            node is not body
            and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
        ):
            for inner in ast.walk(node):
                if inner is not node:
                    skip.add(id(inner))

    for node in ast.walk(body):
        if id(node) in skip or not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is not None:
            calls.append((dotted, node))
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            ref = dotted_name(arg)
            if ref is not None:
                refs.append((ref, node))
        if id(node) in awaited:
            continue
        what = _blocking_what(node, dotted, imports)
        if what is not None:
            blocking.append(BlockingCall(node=node, what=what))
    return calls, refs, blocking


def _blocking_what(
    node: ast.Call, dotted: str | None, imports: ImportMap
) -> str | None:
    """Describe why this call blocks the event loop, or None."""
    canonical = imports.resolve(dotted) if dotted else None
    if canonical is not None:
        if canonical == "time.sleep" or _tail(canonical) == "time.sleep":
            return "time.sleep()"
        root = canonical.split(".", 1)[0]
        if root == "subprocess":
            return f"{canonical}() (child-process wait)"
        if canonical == "os.system":
            return "os.system() (child-process wait)"
        if canonical == "open":
            return "open() (direct file I/O)"
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _FILE_IO_ATTRS:
            return f".{attr}() (direct file I/O)"
        if attr == "acquire":
            receiver = dotted_name(node.func.value)
            leaf = (receiver or "").split(".")[-1]
            if _name_is_lockish(leaf) and not _acquire_is_bounded(node):
                return f"{leaf}.acquire() without a timeout"
    return None


def _acquire_is_bounded(node: ast.Call) -> bool:
    """True when an ``.acquire`` call cannot block indefinitely."""
    for keyword in node.keywords:
        if keyword.arg == "timeout":
            return True
        if keyword.arg == "blocking" and not (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
        ):
            return True
    if node.args:
        first = node.args[0]
        # Positional ``blocking=False`` (or dynamic) short-circuits.
        if not (isinstance(first, ast.Constant) and first.value is True):
            return True
        return len(node.args) >= 2
    return False


# --------------------------------------------------------------- module build
def _literal_key_set(value: ast.expr) -> frozenset[str] | None:
    """The string members of a frozenset/set/tuple/list literal."""
    elts: list[ast.expr] | None = None
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in ("frozenset", "set") and len(value.args) == 1:
            inner = value.args[0]
            if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
                elts = inner.elts
    elif isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        elts = value.elts
    if elts is None:
        return None
    members: set[str] = set()
    for elt in elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        members.add(elt.value)
    return frozenset(members)


def _build_module(ctx: LintContext) -> ModuleInfo:
    imports = ImportMap(ctx.tree)
    info = ModuleInfo(
        name=module_name_for(ctx.rel),
        ctx=ctx,
        imports=imports,
        is_test=_is_test_like(ctx),
    )

    # Module-level constants, declared key sets and mp-context aliases.
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        if value is None or len(targets) != 1:
            continue
        target = targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            info.constants[target.id] = value.value
        elif target.id.endswith("_KEYS"):
            keys = _literal_key_set(value)
            if keys is not None:
                info.key_sets[target.id] = keys
                info.key_set_nodes[target.id] = stmt
        elif isinstance(value, ast.Call):
            canonical = imports.resolve_call(value)
            if canonical is not None and _tail(canonical) in (
                "multiprocessing.get_context",
            ):
                info.mp_context_aliases.add(target.id)

    # Classes: lock attributes first, then lock-region method scans.
    for stmt in ast.walk(ctx.tree):
        if isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _build_class(stmt, info)

    # Functions (module-level and methods) with calls + blocking scan.
    _collect_functions(ctx.tree, info)

    # Thread/process factories and schema dict literals.
    _collect_factories(info)
    return info


def _build_class(node: ast.ClassDef, info: ModuleInfo) -> ClassInfo:
    cls = ClassInfo(name=node.name, module=info.name, node=node)
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cls.methods.add(method.name)
        for stmt in ast.walk(method):
            for target in _write_targets(stmt) if isinstance(
                stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ) else ():
                attr = _self_attr(target)
                if attr is None:
                    continue
                value = getattr(stmt, "value", None)
                if isinstance(value, ast.Call) and _call_is_lock_factory(
                    info.imports.resolve_call(value)
                ):
                    cls.lock_attrs.add(attr)
                elif _name_is_lockish(attr):
                    cls.lock_attrs.add(attr)
    for method in node.body:
        if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan = _MethodScan(cls, method.name)
            for stmt in method.body:
                scan.visit(stmt)
    return cls


def _collect_functions(tree: ast.Module, info: ModuleInfo) -> None:
    def handle(
        node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None
    ) -> None:
        qualname = f"{cls}.{node.name}" if cls else node.name
        calls, refs, blocking = _scan_blocking(node, info.imports)
        info.functions[qualname] = FunctionInfo(
            module=info.name,
            qualname=qualname,
            cls=cls,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            calls=calls,
            refs=refs,
            blocking=blocking,
        )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            handle(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    handle(member, stmt.name)


def _enclosing_function(info: ModuleInfo, node: ast.AST) -> str | None:
    """The qualname of the function whose body contains ``node``."""
    for qualname, function in info.functions.items():
        for inner in ast.walk(function.node):
            if inner is node:
                return qualname
    return None


def _collect_factories(info: ModuleInfo) -> None:
    for node in ast.walk(info.ctx.tree):
        if isinstance(node, ast.Dict):
            schema_dict = _schema_dict(info, node)
            if schema_dict is not None:
                info.schema_dicts.append(schema_dict)
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        canonical = info.imports.resolve(dotted)
        tail = _tail(canonical)
        if canonical in _THREAD_FACTORY_TAILS or tail in _THREAD_FACTORY_TAILS:
            info.creates_threads = True
        elif (
            canonical in _PROCESS_FACTORY_TAILS
            or tail in _PROCESS_FACTORY_TAILS
        ):
            pinned = dotted.split(".", 1)[0] in info.mp_context_aliases or any(
                keyword.arg == "mp_context" for keyword in node.keywords
            )
            info.process_sites.append(
                ProcessSite(
                    node=node,
                    factory=canonical,
                    function=_enclosing_function(info, node),
                    pinned=pinned,
                )
            )


def _schema_dict(info: ModuleInfo, node: ast.Dict) -> SchemaDict | None:
    tag_expr: ast.expr | None = None
    literal_keys: set[str] = set()
    dynamic = False
    for key, value in zip(node.keys, node.values):
        if key is None:  # ``**spread``
            dynamic = True
            continue
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            literal_keys.add(key.value)
            if key.value == "schema":
                tag_expr = value
        else:
            dynamic = True
    if tag_expr is None:
        return None
    return SchemaDict(
        node=node,
        tag_expr=tag_expr,
        literal_keys=frozenset(literal_keys),
        dynamic_keys=dynamic,
        function=None,
    )


# ------------------------------------------------------------------ the model
class ProjectModel:
    """The cross-module view one lint run's project rules share."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        #: dotted module name -> info, in sorted-name order.
        self.modules: dict[str, ModuleInfo] = dict(sorted(modules.items()))

    @classmethod
    def build(cls, contexts: Iterable[LintContext]) -> "ProjectModel":
        """Build the model; deterministic under any context order."""
        ordered = sorted(contexts, key=lambda ctx: ctx.rel)
        modules: dict[str, ModuleInfo] = {}
        for ctx in ordered:
            info = _build_module(ctx)
            modules.setdefault(info.name, info)
        return cls(modules)

    # ------------------------------------------------------------- resolution
    def resolve_function(
        self, module: ModuleInfo, raw: str, cls: str | None = None
    ) -> FunctionInfo | None:
        """The project function a raw call-site name refers to.

        ``raw`` is the dotted name as written (``run_attempt``,
        ``self._bump``, ``resilience.run_attempt``); resolution goes
        through the module's import aliases, then the project's module
        table.  Returns None for externals and dynamic calls.
        """
        head, _, rest = raw.partition(".")
        if head == "self" and cls is not None and rest and "." not in rest:
            return module.functions.get(f"{cls}.{rest}")
        if "." not in raw:
            local = module.functions.get(raw)
            if local is not None or raw not in module.imports.aliases:
                return local
        canonical = module.imports.resolve(raw)
        owner, _, leaf = canonical.rpartition(".")
        target = self.modules.get(owner)
        if target is not None:
            found = target.functions.get(leaf)
            if found is not None:
                return found
        # ``module.Class.method`` / ``package.module.func`` one level up.
        owner2, _, mid = owner.rpartition(".")
        target = self.modules.get(owner2)
        if target is not None:
            return target.functions.get(f"{mid}.{leaf}")
        return None

    def resolve_string_constant(
        self, module: ModuleInfo, expr: ast.expr
    ) -> str | None:
        """The string a literal / (imported) constant expression names."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        if "." not in dotted:
            local = module.constants.get(dotted)
            if local is not None:
                return local
        canonical = module.imports.resolve(dotted)
        owner, _, leaf = canonical.rpartition(".")
        target = self.modules.get(owner)
        if target is not None:
            return target.constants.get(leaf)
        return None

    # ------------------------------------------------------------ call graph
    def call_edges(
        self, function: FunctionInfo
    ) -> Iterator[tuple[FunctionInfo, ast.Call]]:
        """Resolved project-internal callees of one function."""
        module = self.modules[function.module]
        for raw, node in function.calls:
            callee = self.resolve_function(module, raw, cls=function.cls)
            if callee is not None:
                yield callee, node

    def ref_edges(
        self, function: FunctionInfo
    ) -> Iterator[tuple[FunctionInfo, ast.Call]]:
        """Project functions passed by reference from one function."""
        module = self.modules[function.module]
        for raw, node in function.refs:
            callee = self.resolve_function(module, raw, cls=function.cls)
            if callee is not None:
                yield callee, node

    def reachable_from_threaded_modules(self) -> set[tuple[str, str]]:
        """(module, qualname) pairs reachable from thread-starting code.

        Seeds are every function defined in a module that constructs
        threads (that module's code may run with threads alive); edges
        follow the project call graph, so a process fork buried two
        calls deep below a thread-pool driver is still reached.
        """
        seeds: list[FunctionInfo] = []
        for name in sorted(self.modules):
            info = self.modules[name]
            if info.creates_threads and not info.is_test:
                seeds.extend(
                    info.functions[q] for q in sorted(info.functions)
                )
        visited: set[tuple[str, str]] = set()
        stack = seeds
        while stack:
            function = stack.pop()
            key = (function.module, function.qualname)
            if key in visited:
                continue
            visited.add(key)
            for callee, _ in self.call_edges(function):
                stack.append(callee)
            # A reference handed to an executor/thread does run there.
            for callee, _ in self.ref_edges(function):
                stack.append(callee)
        return visited

    def blocking_closure(self) -> dict[tuple[str, str], str]:
        """(module, qualname) -> blocking description, transitively.

        A *sync* function blocks when its own body contains a blocking
        primitive or when any resolvable sync project callee blocks.
        Async callees are excluded -- their own bodies are policed
        directly by CONC002 at their definition site.
        """
        blocks: dict[tuple[str, str], str] = {}
        for name in sorted(self.modules):
            info = self.modules[name]
            for qualname in sorted(info.functions):
                function = info.functions[qualname]
                if function.blocking:
                    blocks[(name, qualname)] = function.blocking[0].what
        changed = True
        while changed:
            changed = False
            for name in sorted(self.modules):
                info = self.modules[name]
                for qualname in sorted(info.functions):
                    key = (name, qualname)
                    if key in blocks:
                        continue
                    function = info.functions[qualname]
                    if function.is_async:
                        continue
                    for callee, _ in self.call_edges(function):
                        if callee.is_async:
                            continue
                        inner = blocks.get((callee.module, callee.qualname))
                        if inner is not None:
                            blocks[key] = (
                                f"{inner} via {callee.module}.{callee.qualname}()"
                            )
                            changed = True
                            break
        return blocks

    # ---------------------------------------------------------------- schemas
    def declared_schema_keys(
        self,
    ) -> dict[str, tuple[frozenset[str], ModuleInfo, ast.AST]]:
        """Schema tag -> (declared key set, declaring module, node).

        Declared by convention: a module-level ``NAME_KEYS`` frozenset
        paired with a ``NAME_SCHEMA`` string constant holding a
        ``repro-*/vN`` tag in the same module.
        """
        declared: dict[str, tuple[frozenset[str], ModuleInfo, ast.AST]] = {}
        for name in sorted(self.modules):
            info = self.modules[name]
            for const_name in sorted(info.key_sets):
                prefix = const_name[: -len("_KEYS")]
                tag = info.constants.get(f"{prefix}_SCHEMA")
                if tag is None or not SCHEMA_TAG_PATTERN.match(tag):
                    continue
                if tag not in declared:
                    declared[tag] = (
                        info.key_sets[const_name],
                        info,
                        info.key_set_nodes[const_name],
                    )
        return declared


def build_project_model(contexts: Iterable[LintContext]) -> ProjectModel:
    """Convenience wrapper around :meth:`ProjectModel.build`."""
    return ProjectModel.build(contexts)
