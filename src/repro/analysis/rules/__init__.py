"""The shipped rule battery.

Importing this package registers every rule with the framework registry
(:func:`repro.analysis.core.register`); :func:`repro.analysis.core.rule_catalog`
triggers the import lazily so the core never depends on the rules.

Shipped rules:

=========  =============================================================
DET001     no wall-clock reads outside ``repro.obs`` and benches
DET002     no unseeded global RNG in ``memory3d`` / ``sweep`` / ``faults``
DET003     cache/checkpoint writes must be atomic (tmp + ``os.replace``)
DET004     ``repro.memory3d.vector`` hot paths loop over ``range`` only
UNIT001    call sites must not mix unit suffixes (``_ns`` vs ``_cycles``)
CFG001     unit-suffixed dataclass defaults respect their unit
OBS001     record calls use registered event names
API001     façade re-exports and ``__all__`` entries resolve
CLI001     CLI handlers honour the ReproError exit-2 contract
LOG001     no bare ``print()`` outside the CLI/report rendering paths
CONC001    lock-owning classes write shared attributes under the lock
CONC002    ``async def`` coroutines never call blocking primitives
CONC003    forks where threads are alive pin the mp start method
SCHEMA001  tagged envelope producers match their declared key sets
=========  =============================================================

The CONC/SCHEMA families are project-scoped
(:class:`repro.analysis.core.ProjectRule`): they live under
:mod:`repro.analysis.flow` and run once per lint over the cross-module
model, but register here with everything else.
"""

from repro.analysis.flow.concurrency import (
    AsyncBlockingRule,
    LockDisciplineRule,
    ThreadBeforeForkRule,
)
from repro.analysis.flow.schema import SchemaDriftRule
from repro.analysis.rules.api import ReExportRule
from repro.analysis.rules.cli_rules import CliDisciplineRule
from repro.analysis.rules.determinism import (
    NonAtomicWriteRule,
    PerRequestLoopRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.rules.logging_rules import BarePrintRule
from repro.analysis.rules.obs import EventNameRule
from repro.analysis.rules.units import ConfigDefaultRule, UnitMismatchRule

__all__ = [
    "AsyncBlockingRule",
    "BarePrintRule",
    "CliDisciplineRule",
    "ConfigDefaultRule",
    "EventNameRule",
    "LockDisciplineRule",
    "NonAtomicWriteRule",
    "PerRequestLoopRule",
    "ReExportRule",
    "SchemaDriftRule",
    "ThreadBeforeForkRule",
    "UnitMismatchRule",
    "UnseededRandomRule",
    "WallClockRule",
]
