"""Event-schema rule: OBS001 -- record calls use registered event names.

The event vocabulary lives in one place,
:data:`repro.obs.events.EVENT_REGISTRY`; the timing engines record
through ``EV_*`` integer aliases derived from it.  This rule closes the
loop: any ``*.record(...)`` / ``record_event(...)`` call whose kind
argument is not a registered name (or is a raw integer literal) is a
schema violation -- downstream consumers (metrics folding, Chrome trace
export, per-vault tables) would silently drop or mislabel the events.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Diagnostic, LintContext, Rule, dotted_name, register


def _registered_names() -> frozenset[str]:
    from repro.obs.events import registered_event_names

    return registered_event_names()


#: Call shapes treated as event-recording sites.
_RECORD_CALLEES = frozenset({"record", "record_event"})


@register
class EventNameRule(Rule):
    """OBS001: record calls must use names from the obs event registry."""

    id: ClassVar[str] = "OBS001"
    title: ClassVar[str] = (
        "EventTrace.record/record_event call sites use registered "
        "EV_*/EventKind names"
    )
    rationale: ClassVar[str] = (
        "repro.obs.events.EVENT_REGISTRY is the single source of truth "
        "for the event schema; an unregistered kind renders as garbage "
        "in every exporter and is invisible to metrics folding."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        registry = _registered_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee: str | None = None
            if isinstance(node.func, ast.Attribute):
                callee = node.func.attr
            elif isinstance(node.func, ast.Name):
                callee = node.func.id
            if callee not in _RECORD_CALLEES or not node.args:
                continue
            kind = node.args[0]
            if isinstance(kind, ast.Name) and kind.id.startswith("EV_"):
                name = kind.id[3:]
                if name not in registry:
                    yield ctx.diagnostic(
                        self.id,
                        kind,
                        f"event alias {kind.id} is not in the "
                        "repro.obs event registry "
                        f"(registered: {', '.join(sorted(registry))})",
                    )
            elif isinstance(kind, ast.Attribute):
                chain = dotted_name(kind) or kind.attr
                base, _, leaf = chain.rpartition(".")
                if base.split(".")[-1] == "EventKind" and leaf not in registry:
                    yield ctx.diagnostic(
                        self.id,
                        kind,
                        f"event kind {chain} is not in the repro.obs event "
                        f"registry (registered: {', '.join(sorted(registry))})",
                    )
            elif isinstance(kind, ast.Constant) and isinstance(kind.value, int):
                yield ctx.diagnostic(
                    self.id,
                    kind,
                    f"raw event kind {kind.value}; record through a "
                    "registered EV_* alias or EventKind member so the "
                    "schema stays greppable",
                )
