"""CLI discipline rule: CLI001 -- handlers honour the ReproError
exit-2 contract.

``repro.cli.main`` owns error presentation: every expected failure is a
:class:`~repro.errors.ReproError` that main() turns into a one-line
stderr message and exit code 2 (``--debug`` re-raises).  Handlers that
``sys.exit()`` directly, raise ``SystemExit``, or swallow broad
exceptions bypass that contract -- errors then lose the uniform
formatting, the exit-code meaning, and the ``--debug`` escape hatch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Diagnostic, LintContext, Rule, dotted_name, register

#: Subcommand handler naming convention.
_HANDLER_PREFIXES = ("_cmd_", "cmd_")

#: Calls that terminate the process out from under main().
_EXIT_CALLS = frozenset({"sys.exit", "os._exit", "exit", "quit"})

#: Exception names too broad for a handler to swallow.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException", "ReproError"})


def _is_handler(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return node.name.startswith(_HANDLER_PREFIXES)


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(stmt, ast.Raise) for stmt in ast.walk(handler))


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return {"BaseException"}  # a bare except catches everything
    nodes: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        nodes = list(handler.type.elts)
    else:
        nodes = [handler.type]
    names: set[str] = set()
    for node in nodes:
        chain = dotted_name(node)
        if chain:
            names.add(chain.rsplit(".", 1)[-1])
    return names


@register
class CliDisciplineRule(Rule):
    """CLI001: subcommand handlers route errors through ReproError."""

    id: ClassVar[str] = "CLI001"
    title: ClassVar[str] = (
        "CLI handlers return exit codes and let ReproError reach main()"
    )
    rationale: ClassVar[str] = (
        "main() is the single place errors become user-facing text and "
        "exit code 2; handlers that sys.exit() or swallow exceptions "
        "fork the contract and break --debug."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.filename == "cli.py" or "cli" in ctx.parts

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        handlers = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _is_handler(node)
        ]
        for handler in handlers:
            yield from self._check_handler(ctx, handler)
        if handlers:
            yield from self._check_main(ctx)

    def _check_handler(
        self, ctx: LintContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain in _EXIT_CALLS:
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"handler {func.name}() calls {chain}(); return an "
                        "int (or raise ReproError) so main() keeps the "
                        "exit-2 discipline",
                    )
            elif isinstance(node, ast.Raise):
                chain = dotted_name(
                    node.exc.func if isinstance(node.exc, ast.Call) else node.exc
                ) if node.exc is not None else None
                if chain == "SystemExit":
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"handler {func.name}() raises SystemExit; return "
                        "an int (or raise ReproError) instead",
                    )
            elif isinstance(node, ast.ExceptHandler):
                if _BROAD_EXCEPTIONS & _caught_names(
                    node
                ) and not _handler_reraises(node):
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"handler {func.name}() swallows "
                        f"{'/'.join(sorted(_BROAD_EXCEPTIONS & _caught_names(node)))}"
                        "; let ReproError propagate to main()",
                    )

    def _check_main(self, ctx: LintContext) -> Iterator[Diagnostic]:
        main = next(
            (
                node
                for node in ctx.tree.body
                if isinstance(node, ast.FunctionDef) and node.name == "main"
            ),
            None,
        )
        if main is None:
            return
        for node in ast.walk(main):
            if isinstance(node, ast.ExceptHandler):
                if "ReproError" in _caught_names(node):
                    return
        yield ctx.diagnostic(
            self.id,
            main,
            "main() never catches ReproError; expected failures must "
            "become one-line stderr messages with exit code 2",
        )
