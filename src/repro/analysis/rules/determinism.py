"""Determinism rules: DET001 wall clocks, DET002 unseeded RNG, DET003
non-atomic writes, DET004 per-request loops in the vector engine.

The sweep engine's contract is byte-identical output across runs, job
counts and cache states; DET001-003 fence off the three ways that
contract quietly breaks: reading a wall clock, drawing from a global
(process-order-dependent) RNG, and letting a crash tear a cache or
checkpoint file in half.  DET004 guards a different contract -- the
vector engine's *speed*: its hot paths must stay array-at-a-time, so
any ``for``/comprehension there that does not iterate a literal
``range(...)`` (pass counters, block tiles, run descriptors -- all
O(n / BLOCK) or O(runs), never O(requests)) is flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import (
    Diagnostic,
    ImportMap,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: Wall-clock reads, keyed by their trailing ``module.function`` pair.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: ``numpy.random`` constructors that *are* the seeded-RNG discipline.
SEEDED_NUMPY_FACTORIES = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: ``random`` attributes that construct seedable instances (allowed).
SEEDED_STDLIB_FACTORIES = frozenset({"Random", "SystemRandom"})

#: Substrings of a write-target name that mark it as a scratch file.
_TEMP_MARKERS = ("tmp", "temp")


def _is_test_or_bench(ctx: LintContext) -> bool:
    name = ctx.filename
    return (
        name.startswith(("test_", "bench_", "conftest"))
        or "tests" in ctx.parts
        or "benchmarks" in ctx.parts
    )


@register
class WallClockRule(Rule):
    """DET001: no wall-clock reads outside ``repro.obs`` and benches."""

    id: ClassVar[str] = "DET001"
    title: ClassVar[str] = (
        "no time.time/perf_counter/datetime.now outside repro.obs, "
        "repro.serve and benches"
    )
    rationale: ClassVar[str] = (
        "Simulated time is the model's output; host time leaking into "
        "results breaks byte-identical sweeps and cache replay.  The "
        "obs and serve layers deal in host time by nature (deadlines, "
        "ETAs, drain timers) and never touch result payloads."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return (
            "obs" not in ctx.parts
            and "serve" not in ctx.parts
            and not _is_test_or_bench(ctx)
        )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve_call(node)
            if canonical is None:
                continue
            tail = ".".join(canonical.split(".")[-2:])
            if canonical in WALL_CLOCK_CALLS or tail in WALL_CLOCK_CALLS:
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"wall-clock read {canonical}() in deterministic code; "
                    "use simulated time, or move it behind repro.obs",
                )


@register
class UnseededRandomRule(Rule):
    """DET002: no global-RNG draws in memory3d / sweep / faults."""

    id: ClassVar[str] = "DET002"
    title: ClassVar[str] = (
        "no unseeded random/numpy.random module-level draws in "
        "memory3d, sweep, faults"
    )
    rationale: ClassVar[str] = (
        "Module-level RNGs are shared process state: results then depend "
        "on import order and worker scheduling.  Derive generators from "
        "an explicit seed (numpy.random.default_rng(seed))."
    )

    _SCOPES = frozenset({"memory3d", "sweep", "faults"})

    def applies_to(self, ctx: LintContext) -> bool:
        return bool(self._SCOPES & set(ctx.parts)) and not _is_test_or_bench(ctx)

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve_call(node)
            if canonical is None:
                continue
            if canonical.startswith("random."):
                leaf = canonical.rsplit(".", 1)[-1]
                if leaf not in SEEDED_STDLIB_FACTORIES:
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"global stdlib RNG draw {canonical}(); "
                        "use a seeded random.Random(seed) instance",
                    )
            elif canonical.startswith("numpy.random."):
                leaf = canonical.rsplit(".", 1)[-1]
                if leaf not in SEEDED_NUMPY_FACTORIES:
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        f"global numpy RNG call {canonical}(); "
                        "use numpy.random.default_rng(seed)",
                    )


def _call_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open(...)`` call, if literal."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _target_is_temp(node: ast.expr) -> bool:
    """Heuristic: the write target is a scratch file (``tmp``/``temp``)."""
    name: str | None = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _TEMP_MARKERS)


@register
class NonAtomicWriteRule(Rule):
    """DET003: cache/checkpoint files must be written atomically."""

    id: ClassVar[str] = "DET003"
    title: ClassVar[str] = (
        "cache/checkpoint paths must write via temp file + os.replace"
    )
    rationale: ClassVar[str] = (
        "A crash mid-write leaves a torn JSON entry that a later sweep "
        "replays as data.  Write to a tmp sibling and os.replace() it."
    )

    _SCOPE_MARKERS = ("cache", "checkpoint")

    def applies_to(self, ctx: LintContext) -> bool:
        if _is_test_or_bench(ctx):
            return False
        haystack = "/".join(ctx.parts)
        return "sweep" in ctx.parts or any(
            marker in haystack for marker in self._SCOPE_MARKERS
        )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode = _call_mode(node)
                if mode is None or not any(ch in mode for ch in "wax"):
                    continue
                if node.args and _target_is_temp(node.args[0]):
                    continue
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"non-atomic open(..., {mode!r}) in a cache/checkpoint "
                    "path; write a tmp sibling and os.replace() it",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("write_text", "write_bytes")
                and not _target_is_temp(node.func.value)
                and dotted_name(node.func.value) is not None
            ):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"direct {node.func.attr}() to a non-temp target in a "
                    "cache/checkpoint path; write a tmp sibling and "
                    "os.replace() it",
                )


def _is_range_iter(node: ast.expr) -> bool:
    """True when a loop iterable is a literal ``range(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


@register
class PerRequestLoopRule(Rule):
    """DET004: no per-request Python loops in the vector engine."""

    id: ClassVar[str] = "DET004"
    title: ClassVar[str] = (
        "repro.memory3d.vector hot paths iterate range(...) only, "
        "never request sequences"
    )
    rationale: ClassVar[str] = (
        "The vector engine's whole value is pricing traces array-at-a-"
        "time; a loop over requests (addresses, latencies, zip of "
        "per-request arrays) silently reintroduces the 355 ns/request "
        "Python floor the module exists to delete.  Loops over pass "
        "counts, blocks or run descriptors are fine -- and those are "
        "exactly the ``range(...)`` loops this rule admits."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return "memory3d" in ctx.parts and ctx.filename == "vector.py"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not _is_range_iter(node.iter):
                    yield ctx.diagnostic(
                        self.id,
                        node,
                        "for-loop over a non-range iterable in the vector "
                        "engine; hot paths must stay array-at-a-time "
                        "(iterate range(...) over blocks/runs, or hoist "
                        "the work into numpy)",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for comp in node.generators:
                    if not _is_range_iter(comp.iter):
                        yield ctx.diagnostic(
                            self.id,
                            node,
                            "comprehension over a non-range iterable in the "
                            "vector engine; hot paths must stay array-at-a-"
                            "time (iterate range(...) or hoist into numpy)",
                        )
