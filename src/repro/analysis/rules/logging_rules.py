"""Logging rule: LOG001 -- no bare ``print()`` outside rendering paths.

``repro.obs.logging`` gives every layer a structured, level-gated,
correlation-bound channel; a bare ``print()`` in library code bypasses
all of it -- the line has no level, no context, no sink, and corrupts
machine-read stdout (``--json`` result documents, OpenMetrics dumps).
The CLI and the report/table renderers are the *output* layer, so they
keep ``print()``; everything else routes through
:func:`repro.obs.logging.get_logger`.  Suppress a deliberate exception
with ``# repro: ignore[LOG001]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Diagnostic, LintContext, Rule, register

#: Module filenames that ARE the user-facing output layer: the CLI and
#: the markdown/HTML/terminal renderers print by design.
RENDERING_FILENAMES = frozenset(
    {
        "cli.py",
        "__main__.py",
        "reporting.py",
        "report.py",
        "viz.py",
    }
)


def _is_exempt(ctx: LintContext) -> bool:
    name = ctx.filename
    return (
        name in RENDERING_FILENAMES
        or name.startswith(("test_", "bench_", "conftest"))
        or "tests" in ctx.parts
        or "benchmarks" in ctx.parts
        or "tools" in ctx.parts
    )


@register
class BarePrintRule(Rule):
    """LOG001: no bare ``print()`` outside the CLI/report rendering paths."""

    id: ClassVar[str] = "LOG001"
    title: ClassVar[str] = (
        "no bare print() outside the CLI and report renderers -- use the "
        "structured logger"
    )
    rationale: ClassVar[str] = (
        "A print() in library code has no level, no correlation context "
        "and no sink, and corrupts machine-read stdout (--json result "
        "documents); repro.obs.logging.get_logger() is the library "
        "channel."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return not _is_exempt(ctx)

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.diagnostic(
                    self.id,
                    node,
                    "bare print() in library code; emit through "
                    "repro.obs.logging.get_logger(...) (or suppress a "
                    "deliberate rendering path with "
                    "# repro: ignore[LOG001])",
                )
