"""Unit-safety rules: UNIT001 call-site suffix mismatches, CFG001
physical dataclass defaults.

The library's convention (documented in :mod:`repro.units`) is that
plain floats carry their unit in the name: ``elapsed_ns``, ``t_rfc_ns``,
``row_bytes``, ``tsv_freq_hz``.  A ns/cycles mix-up type-checks fine
and only shows up as a bandwidth model that is quietly wrong by 10^3 --
these rules make the convention machine-checked at the call and
config-default boundaries where values change hands.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Diagnostic, LintContext, Rule, register

#: Recognised unit suffixes.  ``s`` is only honoured as an underscore
#: suffix (``timeout_s``); a bare ``s`` is the paper's row-buffer
#: element count, not seconds.
UNIT_SUFFIXES = frozenset(
    {"ns", "s", "us", "ms", "cycles", "bytes", "bits", "hz", "gbps", "nj", "pj"}
)

#: Bare identifiers that count as unit-bearing without an underscore.
_BARE_UNIT_NAMES = frozenset({"ns", "cycles", "hz"})


def unit_suffix(name: str | None) -> str | None:
    """The unit a name claims to carry, or None.

    Rate names (``bytes_per_s``, anything with ``_per_``) are exempt:
    their trailing token is a denominator, not the value's unit.
    """
    if not name or "_per_" in name or name.endswith("_per"):
        return None
    if "_" in name:
        token = name.rsplit("_", 1)[1]
        return token if token in UNIT_SUFFIXES else None
    return name if name in _BARE_UNIT_NAMES else None


def _expr_unit(node: ast.expr) -> tuple[str | None, str | None]:
    """(claimed unit, source name) of an argument expression."""
    if isinstance(node, ast.Name):
        return unit_suffix(node.id), node.id
    if isinstance(node, ast.Attribute):
        return unit_suffix(node.attr), node.attr
    return None, None


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return params


@register
class UnitMismatchRule(Rule):
    """UNIT001: unit-suffixed parameters must receive matching values."""

    id: ClassVar[str] = "UNIT001"
    title: ClassVar[str] = (
        "call sites must not mix unit suffixes (_ns vs _cycles vs _bytes)"
    )
    rationale: ClassVar[str] = (
        "Times, cycle counts and sizes all travel as plain floats; the "
        "name suffix is the only type system they have.  Passing x_cycles "
        "where y_ns is expected is a silent 10^3-scale model bug."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        signatures: dict[str, list[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                signatures[node.name] = _function_params(node)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_keywords(ctx, node)
            yield from self._check_positionals(ctx, node, signatures)

    def _check_keywords(
        self, ctx: LintContext, node: ast.Call
    ) -> Iterator[Diagnostic]:
        for keyword in node.keywords:
            expected = unit_suffix(keyword.arg)
            if expected is None:
                continue
            actual, source = _expr_unit(keyword.value)
            if actual is not None and actual != expected:
                yield ctx.diagnostic(
                    self.id,
                    keyword.value,
                    f"argument {source!r} carries unit '{actual}' but "
                    f"parameter {keyword.arg!r} expects '{expected}'",
                )

    def _check_positionals(
        self,
        ctx: LintContext,
        node: ast.Call,
        signatures: dict[str, list[str]],
    ) -> Iterator[Diagnostic]:
        callee: str | None = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        params = signatures.get(callee or "")
        if params is None:
            return
        for arg, param in zip(node.args, params):
            if isinstance(arg, ast.Starred):
                return
            expected = unit_suffix(param)
            if expected is None:
                continue
            actual, source = _expr_unit(arg)
            if actual is not None and actual != expected:
                yield ctx.diagnostic(
                    self.id,
                    arg,
                    f"argument {source!r} carries unit '{actual}' but "
                    f"parameter {param!r} of {callee}() expects '{expected}'",
                )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _literal_number(node: ast.expr) -> float | None:
    """The numeric value of a (possibly negated) literal, else None."""
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
        and not isinstance(node.operand.value, bool)
    ):
        return -float(node.operand.value)
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return float(node.value)
    return None


def _unwrap_field_default(node: ast.expr) -> ast.expr | None:
    """The effective default expression of a dataclass field."""
    if isinstance(node, ast.Call):
        target = node.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "field":
            for keyword in node.keywords:
                if keyword.arg == "default":
                    return keyword.value
            return None  # default_factory etc. -- nothing literal to check
    return node


@register
class ConfigDefaultRule(Rule):
    """CFG001: physical dataclass defaults must respect their unit."""

    id: ClassVar[str] = "CFG001"
    title: ClassVar[str] = (
        "unit-suffixed dataclass fields need unit-consistent defaults "
        "(frequencies via repro.units helpers, byte fields integral, "
        "durations non-negative)"
    )
    rationale: ClassVar[str] = (
        "Memory3DConfig-like defaults are where a '1.25' silently means "
        "Hz instead of GHz.  Frequencies must go through ghz()/mhz() or "
        "a named repro.units constant so the magnitude is explicit."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(
                node
            ):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                if statement.value is None:
                    continue
                suffix = unit_suffix(statement.target.id)
                if suffix is None:
                    continue
                default = _unwrap_field_default(statement.value)
                if default is None:
                    continue
                yield from self._check_field(
                    ctx, statement.target.id, suffix, default
                )

    def _check_field(
        self, ctx: LintContext, name: str, suffix: str, default: ast.expr
    ) -> Iterator[Diagnostic]:
        number = _literal_number(default)
        if suffix == "hz":
            if number is not None:
                yield ctx.diagnostic(
                    self.id,
                    default,
                    f"frequency field {name!r} defaults to the bare literal "
                    f"{number:g}; spell the magnitude with repro.units "
                    "(ghz/mhz) or a named constant",
                )
            return
        if number is None:
            return
        if suffix in ("bytes", "bits") and not number.is_integer():
            yield ctx.diagnostic(
                self.id,
                default,
                f"size field {name!r} defaults to non-integral {number}",
            )
        if number < 0:
            yield ctx.diagnostic(
                self.id,
                default,
                f"field {name!r} defaults to negative {number:g}; physical "
                "quantities here are non-negative",
            )
