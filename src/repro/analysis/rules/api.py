"""Re-export integrity rule: API001 -- façade imports resolve.

Package ``__init__`` façades re-export their submodules' public names;
``tests/test_public_api.py`` samples a few of them, but a renamed
function leaves the façade broken for every name the tests do not
import.  API001 statically resolves every ``from package.sub import X``
in an ``__init__.py`` against the submodule's actual top-level bindings,
and checks ``__all__`` entries are bound in the façade itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path
from typing import ClassVar

from repro.analysis.core import Diagnostic, LintContext, Rule, register


def _package_dotted(path: Path) -> tuple[str, ...]:
    """Dotted name of the package an ``__init__.py`` defines."""
    parts: list[str] = []
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        current = current.parent
    return tuple(reversed(parts))


def _collect_bound_names(body: list[ast.stmt], into: set[str]) -> None:
    """Names bound at a module's top level (descending into if/try)."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            into.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        into.add(leaf.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                into.add(node.target.id)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    into.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                into.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.If):
            _collect_bound_names(node.body, into)
            _collect_bound_names(node.orelse, into)
        elif isinstance(node, ast.Try):
            _collect_bound_names(node.body, into)
            for handler in node.handlers:
                _collect_bound_names(handler.body, into)
            _collect_bound_names(node.orelse, into)
            _collect_bound_names(node.finalbody, into)


def module_bindings(path: Path) -> set[str] | None:
    """Top-level names a module file binds (None if unreadable)."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, SyntaxError):
        return None
    names: set[str] = set()
    _collect_bound_names(tree.body, names)
    return names


@register
class ReExportRule(Rule):
    """API001: façade re-exports must exist in their submodules."""

    id: ClassVar[str] = "API001"
    title: ClassVar[str] = (
        "__init__ façade imports and __all__ entries resolve to real names"
    )
    rationale: ClassVar[str] = (
        "Re-export drift (a submodule rename the façade missed) breaks "
        "`from repro import X` for exactly the names the sampled public-"
        "API tests skip."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.filename == "__init__.py"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        package_dir = ctx.path.parent
        package = _package_dotted(ctx.path)
        cache: dict[Path, set[str] | None] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import(
                    ctx, node, package_dir, package, cache
                )
        yield from self._check_dunder_all(ctx)

    def _resolve_module_file(
        self,
        node: ast.ImportFrom,
        package_dir: Path,
        package: tuple[str, ...],
    ) -> Path | None:
        """Locate the source file an import-from names, if ours."""
        if node.level:
            base = package_dir
            for _ in range(node.level - 1):
                base = base.parent
            remainder = tuple(node.module.split(".")) if node.module else ()
        else:
            if not node.module:
                return None
            target = tuple(node.module.split("."))
            if target[: len(package)] != package or target == package:
                # Absolute import from outside this façade's subtree
                # (third-party, stdlib, or a sibling package): resolve
                # through the source root when the file exists there.
                root = package_dir
                for _ in package:
                    root = root.parent
                candidate_dir = root.joinpath(*target)
                candidate_file = root.joinpath(*target[:-1], f"{target[-1]}.py")
                if candidate_file.is_file():
                    return candidate_file
                if (candidate_dir / "__init__.py").is_file():
                    return candidate_dir / "__init__.py"
                return None
            base = package_dir
            remainder = target[len(package):]
        if not remainder:
            return None
        module_file = base.joinpath(*remainder[:-1], f"{remainder[-1]}.py")
        if module_file.is_file():
            return module_file
        init_file = base.joinpath(*remainder, "__init__.py")
        if init_file.is_file():
            return init_file
        return None

    def _check_import(
        self,
        ctx: LintContext,
        node: ast.ImportFrom,
        package_dir: Path,
        package: tuple[str, ...],
        cache: dict[Path, set[str] | None],
    ) -> Iterator[Diagnostic]:
        module_file = self._resolve_module_file(node, package_dir, package)
        if module_file is None:
            return
        if module_file not in cache:
            cache[module_file] = module_bindings(module_file)
        bound = cache[module_file]
        if bound is None:
            return
        label = node.module or "." * node.level
        for alias in node.names:
            if alias.name != "*" and alias.name not in bound:
                yield ctx.diagnostic(
                    self.id,
                    node,
                    f"re-exported name {alias.name!r} does not exist in "
                    f"{label} (checked {module_file.name})",
                )

    def _check_dunder_all(self, ctx: LintContext) -> Iterator[Diagnostic]:
        bound: set[str] = set()
        _collect_bound_names(ctx.tree.body, bound)
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                continue
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            for element in node.value.elts:
                if (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                    and element.value not in bound
                ):
                    yield ctx.diagnostic(
                        self.id,
                        element,
                        f"__all__ lists {element.value!r} but the façade "
                        "never binds it",
                    )
