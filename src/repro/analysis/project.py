"""Project-level helpers: default lint roots and changed-file discovery.

``python -m repro lint`` with no paths lints the package sources plus
the repo's tooling; ``--changed-only`` narrows the run to the Python
files a git diff touches, which is what pre-commit hooks and the CI
PR job want (see ``tools/lint_changed.py``).
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from repro.errors import AnalysisError

#: Directories linted when the CLI is invoked without explicit paths,
#: relative to the working directory (missing ones are skipped).
DEFAULT_LINT_ROOTS = ("src/repro", "tools")


def default_lint_paths(root: Path | None = None) -> list[Path]:
    """The default lint targets that exist under ``root`` (cwd)."""
    base = Path(root) if root is not None else Path.cwd()
    paths = [base / entry for entry in DEFAULT_LINT_ROOTS]
    existing = [path for path in paths if path.exists()]
    if existing:
        return existing
    if (base / "repro").is_dir():  # running from inside src/
        return [base / "repro"]
    return [base]


def _git_lines(args: list[str], root: Path) -> list[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=root,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        raise AnalysisError(f"git is not available: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        reason = detail[0] if detail else f"exit {proc.returncode}"
        raise AnalysisError(f"git {' '.join(args)} failed: {reason}")
    return [line for line in proc.stdout.split("\0") if line]


def changed_python_files(
    base: str = "HEAD",
    cached: bool = False,
    root: Path | None = None,
    include_untracked: bool = True,
) -> list[Path]:
    """Python files changed relative to ``base``, for ``--changed-only``.

    Args:
        base: git revision (or ``A...B`` range) to diff against; an
            empty string diffs the working tree against the index.
        cached: diff the index instead of the working tree (pre-commit).
        root: repository directory to run git in (default: cwd).
        include_untracked: also return new, not-yet-added ``.py`` files
            (skipped when ``cached`` is set).

    Returns files that still exist, sorted, relative to ``root``.
    """
    where = Path(root) if root is not None else Path.cwd()
    diff_args = ["diff", "--name-only", "--diff-filter=ACMR", "-z"]
    if cached:
        diff_args.insert(1, "--cached")
    if base:
        diff_args.append(base)
    names = set(_git_lines(diff_args, where))
    if include_untracked and not cached:
        names.update(
            _git_lines(["ls-files", "--others", "--exclude-standard", "-z"], where)
        )
    files = sorted(
        where / name
        for name in names
        if name.endswith(".py") and (where / name).is_file()
    )
    return files
