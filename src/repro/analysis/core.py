"""Visitor core of the domain lint framework.

The framework is deliberately small: a :class:`Rule` is a class with an
``id``, a path-scoping predicate and a ``check`` generator that walks a
parsed module (:class:`LintContext`) and yields :class:`Diagnostic`
objects with ``file:line:col`` anchors.  Rules self-register through the
:func:`register` decorator; :func:`run_lint` walks a set of paths,
parses each Python file once, runs every applicable rule and filters
out findings the source suppresses with a ``# repro: ignore[RULE-ID]``
comment (same line, or a standalone comment line directly above).

Everything here is stdlib-only (``ast`` + ``tokenize``); the rules live
in :mod:`repro.analysis.rules` and the CLI wiring in
:func:`repro.cli._cmd_lint`.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

from repro.errors import AnalysisError

if TYPE_CHECKING:  # circular at runtime: flow builds on this module
    from repro.analysis.flow.model import ProjectModel

#: Rule id shape: an uppercase category plus a three-digit number.
RULE_ID_PATTERN = re.compile(r"^[A-Z]{3,8}\d{3}$")

#: ``# repro: ignore[DET001]`` or ``# repro: ignore[DET001, OBS001]``.
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]"
)

#: Synthetic rule id attached to unparseable files.
SYNTAX_RULE_ID = "SYNTAX"

#: Wire-schema tag of the JSON lint report (``render_json``).
LINT_SCHEMA = "repro-lint/v1"

#: Exact top-level key set a ``repro-lint/v1`` document carries.
LINT_KEYS = frozenset(
    {"schema", "files_checked", "rules", "count", "diagnostics"}
)

#: SARIF version emitted by ``render_sarif``.
SARIF_VERSION = "2.1.0"

#: Rule-id prefix -> family title, for the grouped ``--list-rules`` view.
FAMILY_TITLES = {
    "API": "Facade integrity",
    "CFG": "Configuration hygiene",
    "CLI": "CLI discipline",
    "CONC": "Concurrency contracts",
    "DET": "Determinism",
    "LOG": "Logging discipline",
    "OBS": "Observability vocabulary",
    "SCHEMA": "Wire-schema contracts",
    "UNIT": "Unit discipline",
}


def rule_family(rule_id: str) -> str:
    """The alphabetic family prefix of a rule id (``CONC001`` -> ``CONC``)."""
    return rule_id.rstrip("0123456789")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Human-readable one-liner: ``path:line:col: RULE-ID message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-native form (stable key order via ``sort_keys``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class LintContext:
    """One parsed module plus the location metadata rules scope on."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def parts(self) -> tuple[str, ...]:
        """Lower-cased path components of the display path."""
        return tuple(part.lower() for part in Path(self.rel).parts)

    @property
    def filename(self) -> str:
        return self.path.name

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``line`` carries (or follows) a matching suppression."""
        return rule_id in self.suppressions.get(line, set())

    def diagnostic(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Diagnostic:
        """Anchor a finding to an AST node of this module."""
        return Diagnostic(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class every domain rule derives from.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to the module paths where its
    invariant is meaningful (determinism rules skip ``obs`` and bench
    files, the CLI rule only looks at ``cli.py``, ...).
    """

    #: Stable identifier (``DET001``); used in reports and suppressions.
    id: ClassVar[str] = ""
    #: One-line summary shown by ``lint --list-rules``.
    title: ClassVar[str] = ""
    #: Why the invariant matters (rendered into the rule catalog docs).
    rationale: ClassVar[str] = ""
    #: ``"file"`` rules check one module at a time; ``"project"`` rules
    #: walk the cross-module :class:`repro.analysis.flow.ProjectModel`.
    scope: ClassVar[str] = "file"

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether this rule should run over ``ctx`` at all."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield every violation found in the module."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator


class ProjectRule(Rule):
    """Base class for rules that need the whole project at once.

    Project rules do not implement :meth:`check`; they run *after* the
    per-file pass, once, over a :class:`repro.analysis.flow.ProjectModel`
    built from every successfully parsed module of the run.  Per-line
    ``# repro: ignore[RULE-ID]`` suppression applies unchanged --
    :func:`run_lint` filters their findings through the owning module's
    suppression table.
    """

    scope: ClassVar[str] = "project"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Project rules have no per-file pass."""
        return iter(())

    def check_project(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        """Yield every violation found across the project model."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not RULE_ID_PATTERN.match(cls.id):
        raise AnalysisError(
            f"rule id {cls.id!r} does not match CATEGORY000 shape"
        )
    if cls.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_catalog() -> dict[str, type[Rule]]:
    """All registered rules, id -> class, in id order."""
    _ensure_rules_loaded()
    return dict(sorted(_REGISTRY.items()))


def build_rules(rule_ids: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the requested rules (all of them by default)."""
    catalog = rule_catalog()
    if rule_ids is None:
        return [cls() for cls in catalog.values()]
    rules: list[Rule] = []
    for rule_id in rule_ids:
        normalized = rule_id.upper()
        if normalized not in catalog:
            known = ", ".join(catalog)
            raise AnalysisError(
                f"unknown rule id {rule_id!r} (known rules: {known})"
            )
        rules.append(catalog[normalized]())
    return rules


def _ensure_rules_loaded() -> None:
    """Import the rule battery exactly once (registration side effect)."""
    import repro.analysis.rules  # noqa: F401  (registers on import)


# ---------------------------------------------------------------- suppression
def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line.

    A suppression comment covers the physical line it sits on; a comment
    that is the only thing on its line additionally covers the next
    line, so multi-line statements can carry their waiver above them.
    """
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressed
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION.search(token.string)
        if not match:
            continue
        ids = {part.strip().upper() for part in match.group(1).split(",")}
        ids.discard("")
        line = token.start[0]
        suppressed.setdefault(line, set()).update(ids)
        text_before = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        if not text_before.strip():
            suppressed.setdefault(line + 1, set()).update(ids)
    return suppressed


# -------------------------------------------------------------------- running
def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (skipping caches), sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"lint path does not exist: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_context(path: Path, root: Path | None = None) -> LintContext | None:
    """Parse one file into a :class:`LintContext` (None on syntax error).

    ``root`` controls the display path; diagnostics are reported
    relative to it when the file lives underneath.
    """
    source = Path(path).read_text(encoding="utf-8")
    rel = _display_path(Path(path), root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    return LintContext(
        path=Path(path),
        rel=rel,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def _display_path(path: Path, root: Path | None) -> str:
    base = (root or Path.cwd()).resolve()
    try:
        return path.resolve().relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintReport:
    """The outcome of one lint run."""

    diagnostics: list[Diagnostic]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def render_text(self) -> str:
        """Human diagnostics, one per line, plus a summary trailer."""
        lines = [diag.format() for diag in self.diagnostics]
        summary = (
            f"{len(self.diagnostics)} finding(s) in {self.files_checked} "
            f"file(s) [{', '.join(self.rules_run)}]"
            if self.diagnostics
            else f"clean: {self.files_checked} file(s), "
            f"rules {', '.join(self.rules_run)}"
        )
        return "\n".join([*lines, summary])

    def render_json(self) -> str:
        """Deterministic JSON document (sorted keys, trailing newline)."""
        document = {
            "schema": LINT_SCHEMA,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "count": len(self.diagnostics),
            "diagnostics": [diag.as_dict() for diag in self.diagnostics],
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    def render_sarif(self) -> str:
        """SARIF 2.1.0 document for GitHub code-scanning upload.

        Deterministic like :meth:`render_json`: sorted keys, sorted
        diagnostics, one run, one tool driver (``repro-lint``) whose
        rule metadata comes straight from the registry catalog.
        """
        catalog = rule_catalog()
        rule_ids = sorted(
            set(self.rules_run) | {d.rule_id for d in self.diagnostics}
        )
        sarif_rules = []
        for rule_id in rule_ids:
            cls = catalog.get(rule_id)
            descriptor: dict[str, object] = {"id": rule_id}
            if cls is not None:
                descriptor["shortDescription"] = {"text": cls.title}
                descriptor["fullDescription"] = {"text": cls.rationale}
                descriptor["properties"] = {
                    "family": rule_family(rule_id),
                    "scope": cls.scope,
                }
            else:  # SYNTAX pseudo-rule
                descriptor["shortDescription"] = {
                    "text": "file does not parse as Python"
                }
            sarif_rules.append(descriptor)
        results = [
            {
                "ruleId": diag.rule_id,
                "level": "error",
                "message": {"text": diag.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": diag.path},
                            "region": {
                                "startLine": diag.line,
                                "startColumn": diag.col,
                            },
                        }
                    }
                ],
            }
            for diag in self.diagnostics
        ]
        document = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": SARIF_VERSION,
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "version": "1.0.0",
                            "rules": sarif_rules,
                        }
                    },
                    "columnKind": "unicodeCodePoints",
                    "results": results,
                }
            ],
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"


def lint_file(
    path: Path, rules: Sequence[Rule], root: Path | None = None
) -> list[Diagnostic]:
    """Run per-file ``rules`` over one file, honouring suppressions."""
    ctx = load_context(path, root)
    if ctx is None:
        return [
            Diagnostic(
                path=_display_path(Path(path), root),
                line=1,
                col=1,
                rule_id=SYNTAX_RULE_ID,
                message="file does not parse as Python",
            )
        ]
    return _check_context(ctx, rules)


def _check_context(ctx: LintContext, rules: Sequence[Rule]) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for rule in rules:
        if rule.scope != "file" or not rule.applies_to(ctx):
            continue
        for diag in rule.check(ctx):
            if not ctx.is_suppressed(diag.line, diag.rule_id):
                findings.append(diag)
    return findings


def _run_project_pass(
    rules: Sequence[Rule], contexts: Sequence[LintContext]
) -> list[Diagnostic]:
    """Run the project-scoped rules over one shared cross-module model."""
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if not project_rules or not contexts:
        return []
    from repro.analysis.flow.model import ProjectModel  # circular at top

    model = ProjectModel.build(contexts)
    by_rel = {ctx.rel: ctx for ctx in contexts}
    findings: list[Diagnostic] = []
    for rule in project_rules:
        for diag in rule.check_project(model):
            ctx = by_rel.get(diag.path)
            if ctx is not None and ctx.is_suppressed(diag.line, diag.rule_id):
                continue
            findings.append(diag)
    return findings


def run_lint(
    paths: Iterable[Path | str],
    rule_ids: Sequence[str] | None = None,
    root: Path | None = None,
    flow: bool = True,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules.

    Per-file rules run module by module; project-scoped rules (see
    :class:`ProjectRule`) run once afterwards over a cross-module model
    built from every file that parsed.  ``flow=False`` skips the
    project pass -- the right call when linting an arbitrary file
    subset, where cross-module conclusions would be drawn from a
    partial view of the tree.
    """
    rules = build_rules(rule_ids)
    diagnostics: list[Diagnostic] = []
    contexts: list[LintContext] = []
    files = 0
    for path in iter_python_files(paths):
        files += 1
        ctx = load_context(path, root)
        if ctx is None:
            diagnostics.append(
                Diagnostic(
                    path=_display_path(Path(path), root),
                    line=1,
                    col=1,
                    rule_id=SYNTAX_RULE_ID,
                    message="file does not parse as Python",
                )
            )
            continue
        contexts.append(ctx)
        diagnostics.extend(_check_context(ctx, rules))
    if flow:
        diagnostics.extend(_run_project_pass(rules, contexts))
    diagnostics.sort()
    return LintReport(
        diagnostics=diagnostics,
        files_checked=files,
        rules_run=tuple(rule.id for rule in rules),
    )


# ------------------------------------------------------------- ast utilities
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias -> canonical dotted origin, from a module's imports.

    ``import numpy as np`` maps ``np`` to ``numpy``;
    ``from time import perf_counter as pc`` maps ``pc`` to
    ``time.perf_counter``.  :meth:`resolve` rewrites a call-site dotted
    chain through the map, so ``np.random.rand`` canonicalizes to
    ``numpy.random.rand`` regardless of the alias in use.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    self.aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of ``dotted`` to its canonical import."""
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee (None if dynamic)."""
        dotted = dotted_name(node.func)
        return self.resolve(dotted) if dotted else None
