"""One-command reproduction report.

``python -m repro reproduce`` regenerates every paper artifact (Tables 1
and 2 from both the analytic model and the trace-driven simulator, the
block-height and vault-parallelism ablations, the energy comparison, a
per-vault utilization breakdown from the event recorder, and a
degradation table showing how each layout survives the built-in
fault-injection plans) and renders
them as a single markdown document -- the quickest way for a reader to
check this repository against the paper.
"""

from __future__ import annotations

from repro.core import AnalyticModel
from repro.core.config import SystemConfig
from repro.energy import EnergyModel
from repro.faults import degradation_report, render_degradation
from repro.layouts import BlockDDLLayout, RowMajorLayout, optimal_block_geometry
from repro.memory3d import Memory3D
from repro.obs import EventTrace, vault_utilization_table
from repro.sweep import ResultCache, SweepGrid, run_sweep
from repro.trace import block_column_read_trace, column_walk_trace
from repro.viz import bar_chart, percentage

#: Paper reference values for the report's delta columns.
PAPER_TABLE1 = {
    2048: (6.4, 0.01, 32.0, 0.40),
    4096: (3.2, 0.005, 25.6, 0.32),
    8192: (3.2, 0.005, 23.04, 0.288),
}
PAPER_IMPROVEMENT = {2048: 95.1, 4096: 97.0, 8192: 96.6}


def _markdown_table(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def reproduce_report(
    sizes: tuple[int, ...] = (2048, 4096, 8192),
    max_requests: int = 131_072,
    config: SystemConfig | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> str:
    """Build the full reproduction report as markdown.

    The N-sweep (Table 1) and h-sweep (block-height ablation) sections
    run on the :mod:`repro.sweep` engine: pass ``jobs`` to fan their
    points out across worker processes and ``cache`` to replay
    already-simulated points from disk.
    """
    config = config or SystemConfig()
    model = AnalyticModel(config)
    memory = Memory3D(config.memory)
    peak = config.peak_bandwidth
    sections: list[str] = ["# Reproduction report", ""]

    # ------------------------------------------------------------ the device
    sections += ["## Modelled system", "", "```",
                 config.memory.describe(), "```", ""]

    # ------------------------------------------------- Table 1 (the N-sweep)
    sections += ["## Table 1 -- column-wise FFT throughput", ""]
    n_sweep = run_sweep(
        SweepGrid(sizes=sizes, layouts=("row-major", "ddl")),
        config=config, max_requests=max_requests, jobs=jobs, cache=cache,
    )
    rows = []
    for n in sizes:
        base = n_sweep.one(n=n, layout="row-major")
        opt = n_sweep.one(n=n, layout="ddl")
        paper = PAPER_TABLE1.get(n)
        rows.append([
            f"{n}",
            f"{base['throughput_gbitps']:.2f} Gb/s",
            percentage(base["utilization"], 2),
            f"{opt['throughput_gbps']:.2f} GB/s",
            percentage(opt["utilization"]),
            (f"{paper[0]} Gb/s / {paper[2]} GB/s" if paper else "--"),
        ])
    sections.append(_markdown_table(
        ["N", "baseline (sim)", "base util", "optimized (sim)",
         "opt util", "paper (base/opt)"],
        rows,
    ))
    sections.append("")

    # -------------------------------------------------------------- Table 2
    sections += ["## Table 2 -- entire 2D FFT application", ""]
    rows = []
    for n in sizes:
        base_sys = model.baseline_system(n)
        opt_sys = model.optimized_system(n)
        improvement = opt_sys.improvement_over(base_sys)
        paper = PAPER_IMPROVEMENT.get(n)
        rows.append([
            f"{n}",
            f"{base_sys.throughput_gbps:.2f} GB/s",
            f"{opt_sys.throughput_gbps:.2f} GB/s",
            f"{improvement:.1f}%",
            (f"{paper}%" if paper else "--"),
            f"{opt_sys.latency_reduction_over(base_sys):.2f}x",
        ])
    sections.append(_markdown_table(
        ["N", "baseline", "optimized", "improvement", "paper", "latency cut"],
        rows,
    ))
    sections.append("")

    # ------------------------------------------------ the h-sweep ablation
    n_ab = min(sizes)
    sections += [f"## Ablation -- block height (N={n_ab}, column-at-a-time)", ""]
    geo = optimal_block_geometry(config.memory, n_ab)
    s_elems = config.memory.row_elements
    heights = []
    height = 1
    while height <= s_elems:
        heights.append(height)
        height *= 2
    h_sweep = run_sweep(
        SweepGrid(
            sizes=(n_ab,),
            layouts=("ddl",),
            heights=tuple(heights),
            whole_blocks=False,
        ),
        config=config, max_requests=max_requests, jobs=jobs, cache=cache,
    )
    series = {}
    for h in heights:
        entry = h_sweep.one(n=n_ab, height=h)
        label = f"h={h}" + (" (Eq.1)" if h == geo.height else "")
        series[label] = entry["memory_utilization"] * 100
    sections += ["```", bar_chart(series, unit="% of peak"), "```", ""]

    # --------------------------------------------------------------- energy
    sections += [f"## Energy -- column phase (N={n_ab})", ""]
    energy = EnergyModel()
    cols = 2 * geo.width
    base_stats = memory.simulate(
        column_walk_trace(RowMajorLayout(n_ab, n_ab), cols=range(cols)),
        "in_order", sample=max_requests,
    )
    layout = BlockDDLLayout(n_ab, n_ab, geo.width, geo.height)
    ddl_stats = memory.simulate(
        block_column_read_trace(layout, n_streams=2, block_cols=range(2)),
        "per_vault", sample=max_requests,
    )
    base_e = energy.memory_energy(base_stats)
    ddl_e = energy.memory_energy(ddl_stats) + energy.reorganization_energy(
        2 * layout.n_block_rows * layout.block_elements
    )
    sections.append(_markdown_table(
        ["architecture", "total", "activation share", "activations"],
        [
            ["baseline", f"{base_e.total_nj / 1e6:.3f} mJ",
             percentage(base_e.activation_nj / base_e.total_nj),
             f"{base_stats.row_activations:,}"],
            ["optimized", f"{ddl_e.total_nj / 1e6:.3f} mJ",
             percentage(ddl_e.activation_nj / ddl_e.total_nj),
             f"{ddl_stats.row_activations:,}"],
        ],
    ))
    ratio = base_e.total_nj / ddl_e.total_nj
    sections += ["", f"Energy ratio: **{ratio:.1f}x** in favour of the DDL.", ""]

    # ------------------------------------------------- per-vault utilization
    sections += [f"## Per-vault utilization -- column phase (N={n_ab})", ""]
    recorder = EventTrace()
    instrumented = Memory3D(config.memory, recorder=recorder)
    base_run = column_walk_trace(RowMajorLayout(n_ab, n_ab), cols=range(cols))
    base_run = base_run.head(min(len(base_run), max_requests))
    base_vault = instrumented.simulate(base_run, "in_order")
    sections += [
        "Baseline (row-major, in-order): every column access opens a new "
        "row and the stream visits vaults one at a time.",
        "",
        vault_utilization_table(recorder, base_vault.elapsed_ns,
                                config.memory),
        "",
    ]
    recorder.clear()
    ddl_run = block_column_read_trace(
        layout,
        n_streams=config.column_streams,
        block_cols=range(min(config.column_streams,
                             layout.blocks_per_row_band)),
    )
    ddl_run = ddl_run.head(min(len(ddl_run), max_requests))
    ddl_vault = instrumented.simulate(ddl_run, "per_vault")
    sections += [
        f"Optimized (DDL, {config.column_streams} per-vault streams): "
        "block columns keep rows open and spread load across vaults.",
        "",
        vault_utilization_table(recorder, ddl_vault.elapsed_ns,
                                config.memory),
        "",
    ]

    # -------------------------------------------------- fault degradation
    faults = degradation_report(
        config=config, n=n_ab, max_requests=max_requests
    )
    sections += [
        render_degradation(
            faults,
            heading=f"## Degradation under injected faults (N={n_ab})",
        ),
    ]

    return "\n".join(sections)
