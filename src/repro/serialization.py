"""Configuration (de)serialization.

Experiments live or die by whether a configuration can be written down,
shared and reloaded exactly.  This module converts every configuration
dataclass to and from plain dictionaries (JSON-compatible: only str, int,
float, bool, None) with strict validation on the way back in -- unknown
keys are errors, not silently ignored, so a typo in a config file cannot
quietly fall back to a default.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.core.config import KernelConfig, SystemConfig
from repro.energy.params import EnergyParameters
from repro.errors import ConfigError
from repro.memory3d.config import (
    Memory3DConfig,
    RefreshParameters,
    TimingParameters,
)


def _check_keys(data: dict[str, Any], allowed: set[str], what: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ConfigError(f"{what}: unknown keys {sorted(unknown)}")


# ----------------------------------------------------------------- timing
def timing_to_dict(timing: TimingParameters) -> dict[str, float]:
    """Serialize the four activate/streaming parameters."""
    return {
        "t_in_row": timing.t_in_row,
        "t_in_vault": timing.t_in_vault,
        "t_diff_bank": timing.t_diff_bank,
        "t_diff_row": timing.t_diff_row,
    }


def timing_from_dict(data: dict[str, Any]) -> TimingParameters:
    """Inverse of :func:`timing_to_dict`."""
    _check_keys(data, {"t_in_row", "t_in_vault", "t_diff_bank", "t_diff_row"},
                "timing")
    return TimingParameters(**data)


# ---------------------------------------------------------------- refresh
def refresh_to_dict(refresh: RefreshParameters | None) -> dict[str, float] | None:
    """Serialize refresh parameters (None stays None)."""
    if refresh is None:
        return None
    return {"t_refi_ns": refresh.t_refi_ns, "t_rfc_ns": refresh.t_rfc_ns}


def refresh_from_dict(data: dict[str, Any] | None) -> RefreshParameters | None:
    """Inverse of :func:`refresh_to_dict`."""
    if data is None:
        return None
    _check_keys(data, {"t_refi_ns", "t_rfc_ns"}, "refresh")
    return RefreshParameters(**data)


# ----------------------------------------------------------------- memory
def memory_to_dict(config: Memory3DConfig) -> dict[str, Any]:
    """Serialize a 3D memory configuration."""
    return {
        "vaults": config.vaults,
        "layers": config.layers,
        "banks_per_layer": config.banks_per_layer,
        "row_bytes": config.row_bytes,
        "rows_per_bank": config.rows_per_bank,
        "tsvs_per_vault": config.tsvs_per_vault,
        "tsv_freq_hz": config.tsv_freq_hz,
        "timing": timing_to_dict(config.timing),
        "refresh": refresh_to_dict(config.refresh),
    }


def memory_from_dict(data: dict[str, Any]) -> Memory3DConfig:
    """Inverse of :func:`memory_to_dict`."""
    allowed = {
        "vaults", "layers", "banks_per_layer", "row_bytes", "rows_per_bank",
        "tsvs_per_vault", "tsv_freq_hz", "timing", "refresh",
    }
    _check_keys(data, allowed, "memory")
    data = dict(data)
    timing = timing_from_dict(data.pop("timing", timing_to_dict(TimingParameters())))
    refresh = refresh_from_dict(data.pop("refresh", None))
    return Memory3DConfig(timing=timing, refresh=refresh, **data)


# ----------------------------------------------------------------- kernel
def kernel_to_dict(config: KernelConfig) -> dict[str, Any]:
    """Serialize the FFT kernel configuration."""
    return {
        "lanes": config.lanes,
        "radix": config.radix,
        # JSON keys are strings; sizes convert back on load.
        "clock_table_hz": {str(k): v for k, v in config.clock_table_hz.items()},
    }


def kernel_from_dict(data: dict[str, Any]) -> KernelConfig:
    """Inverse of :func:`kernel_to_dict`."""
    _check_keys(data, {"lanes", "radix", "clock_table_hz"}, "kernel")
    data = dict(data)
    table = data.pop("clock_table_hz", None)
    kwargs: dict[str, Any] = dict(data)
    if table is not None:
        kwargs["clock_table_hz"] = {int(k): float(v) for k, v in table.items()}
    return KernelConfig(**kwargs)


# ----------------------------------------------------------------- system
def system_to_dict(config: SystemConfig) -> dict[str, Any]:
    """Serialize a complete system configuration."""
    return {
        "memory": memory_to_dict(config.memory),
        "kernel": kernel_to_dict(config.kernel),
        "column_streams": config.column_streams,
    }


def system_from_dict(data: dict[str, Any]) -> SystemConfig:
    """Inverse of :func:`system_to_dict`."""
    _check_keys(data, {"memory", "kernel", "column_streams"}, "system")
    return SystemConfig(
        memory=memory_from_dict(data.get("memory", memory_to_dict(Memory3DConfig()))),
        kernel=kernel_from_dict(data.get("kernel", kernel_to_dict(KernelConfig()))),
        column_streams=data.get("column_streams", 16),
    )


# ----------------------------------------------------------------- energy
def energy_to_dict(params: EnergyParameters) -> dict[str, float]:
    """Serialize energy parameters."""
    return {
        "activation_nj": params.activation_nj,
        "dram_access_pj_per_byte": params.dram_access_pj_per_byte,
        "tsv_pj_per_byte": params.tsv_pj_per_byte,
        "sram_pj_per_byte": params.sram_pj_per_byte,
        "fft_op_pj": params.fft_op_pj,
    }


def energy_from_dict(data: dict[str, Any]) -> EnergyParameters:
    """Inverse of :func:`energy_to_dict`."""
    allowed = {
        "activation_nj", "dram_access_pj_per_byte", "tsv_pj_per_byte",
        "sram_pj_per_byte", "fft_op_pj",
    }
    _check_keys(data, allowed, "energy")
    return EnergyParameters(**data)


# ----------------------------------------------------- canonical encoding
def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no incidental whitespace.

    Two structurally equal documents encode to the same byte string, which
    makes the encoding suitable for content addressing (sweep cache keys,
    result fingerprints).  Only JSON-native types are accepted.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def stable_digest(data: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def merge_config_dicts(
    base: dict[str, Any], overrides: dict[str, Any]
) -> dict[str, Any]:
    """Recursively merge ``overrides`` into ``base`` (neither is mutated).

    Nested dicts merge key by key; every other value in ``overrides``
    replaces the base value outright.  Unknown keys are *not* rejected
    here -- the strict ``*_from_dict`` loaders validate the merged result.
    """
    merged = dict(base)
    for key, value in overrides.items():
        if (
            isinstance(value, dict)
            and isinstance(merged.get(key), dict)
        ):
            merged[key] = merge_config_dicts(merged[key], value)
        else:
            merged[key] = value
    return merged


def system_with_overrides(
    config: SystemConfig, overrides: dict[str, Any]
) -> SystemConfig:
    """Apply a (possibly nested, possibly partial) override dict to a config.

    The config round-trips through :func:`system_to_dict`, so overrides use
    the serialized key names, e.g. ``{"memory": {"timing": {"t_in_row":
    1.25}}}`` or ``{"column_streams": 8}``.
    """
    return system_from_dict(merge_config_dicts(system_to_dict(config), overrides))


# -------------------------------------------------------------- json files
def save_system_config(config: SystemConfig, path: str | Path) -> None:
    """Write a system configuration as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(system_to_dict(config), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_system_config(path: str | Path) -> SystemConfig:
    """Read a system configuration from JSON."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: expected a JSON object")
    return system_from_dict(data)
