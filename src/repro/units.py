"""Unit helpers: time, frequency, bandwidth and size conversions.

The paper quotes throughput in GB/s (and, for the baseline column phase,
Gb/s), latency in ns, clocks in MHz and row buffers in bytes.  Keeping the
conversions in one place avoids the classic factor-of-8 and 1000-vs-1024
mistakes.  Internally the library uses:

* time        -- nanoseconds (float)
* frequency   -- hertz (float)
* bandwidth   -- bytes per second (float)
* sizes       -- bytes (int)

All conversions use decimal (SI) multipliers, matching the paper's GB/s.
"""

from __future__ import annotations

#: Number of bytes occupied by one complex sample (32-bit real + 32-bit imag).
ELEMENT_BYTES = 8

#: SI multipliers.
KILO = 1_000.0
MEGA = 1_000_000.0
GIGA = 1_000_000_000.0

#: One second expressed in nanoseconds.
NS_PER_S = 1e9


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def mhz(value: float) -> float:
    """A frequency given in MHz, as Hz."""
    return value * MEGA


def ghz(value: float) -> float:
    """A frequency given in GHz, as Hz."""
    return value * GIGA


def period_ns(freq_hz: float) -> float:
    """Clock period in nanoseconds for a frequency in Hz."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return NS_PER_S / freq_hz


def bytes_per_ns_to_gbps(rate: float) -> float:
    """Convert a rate in bytes/ns to GB/s (decimal).

    One byte per nanosecond is exactly one GB/s with SI units, so this is an
    identity -- it exists to make call sites self-documenting.
    """
    return rate


def gbps(value: float) -> float:
    """A bandwidth given in GB/s, as bytes/second."""
    return value * GIGA


def to_gbps(bytes_per_second: float) -> float:
    """Express a bytes/second bandwidth in GB/s."""
    return bytes_per_second / GIGA


def to_gbitps(bytes_per_second: float) -> float:
    """Express a bytes/second bandwidth in Gb/s (gigabits)."""
    return bytes_per_second * 8.0 / GIGA


def bandwidth_bytes_per_s(total_bytes: int, elapsed_ns: float) -> float:
    """Average bandwidth in bytes/second over an interval in nanoseconds."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns} ns")
    return total_bytes / ns_to_s(elapsed_ns)


def elements_to_bytes(n_elements: int) -> int:
    """Size in bytes of ``n_elements`` complex samples."""
    return n_elements * ELEMENT_BYTES


def bytes_to_elements(n_bytes: int) -> int:
    """Number of complex samples that fit in ``n_bytes`` (must divide evenly)."""
    if n_bytes % ELEMENT_BYTES:
        raise ValueError(
            f"{n_bytes} bytes is not a whole number of {ELEMENT_BYTES}-byte elements"
        )
    return n_bytes // ELEMENT_BYTES


def is_power_of_two(value: int) -> bool:
    """True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (value must be positive)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return 1 << (value - 1).bit_length()


def ilog2(value: int) -> int:
    """Integer log2 of a power of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
