"""Matrix multiplication on the 3D MI-FPGA.

The authors' companion papers [13, 14] model matrix multiplication on
exactly this architecture; it is also the second workload of the
logic-in-memory comparison [17].  This package implements the streaming
panel formulation those models assume -- a panel of A rows resident
on chip while all of B streams past, column by column -- which makes B's
*column* access pattern the kernel's memory bottleneck and therefore
layout-sensitive in precisely the way the paper's 2D FFT column phase is.
"""

from repro.matmul.architecture import (
    MatMulArchitecture,
    MatMulMetrics,
    matmul_baseline,
    matmul_optimized,
)

__all__ = [
    "MatMulArchitecture",
    "MatMulMetrics",
    "matmul_baseline",
    "matmul_optimized",
]
