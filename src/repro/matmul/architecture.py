"""Streaming-panel matrix multiplication architectures (refs [13, 14]).

``C = A @ B`` with ``n x n`` complex matrices:

* a **panel** of ``panel_rows`` rows of A is loaded on chip (row-major
  streams -- cheap under any layout);
* **all of B streams past the panel, column by column**; each column
  produces one column-slice of the panel's C rows.  B is re-streamed once
  per panel, i.e. ``n / panel_rows`` times -- the dominant traffic;
* the finished C panel is written back row-major.

B's column streams make its layout the performance knob: row-major B
collapses exactly like the paper's FFT column phase, while column-major
or block-DDL B streams at device bandwidth.  The compute side is a MAC
array of ``macs`` complex multiply-accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SystemConfig
from repro.core.memory_image import MemoryImage
from repro.errors import ConfigError
from repro.layouts import (
    BlockDDLLayout,
    ColumnMajorLayout,
    Layout,
    RowMajorLayout,
    optimal_block_geometry,
)
from repro.memory3d.memory import Memory3D
from repro.trace.generators import (
    block_column_read_trace,
    column_walk_trace,
)
from repro.units import ELEMENT_BYTES, is_power_of_two

#: B-matrix layout choices.
B_LAYOUTS = ("row-major", "column-major", "block-ddl")


@dataclass(frozen=True)
class MatMulMetrics:
    """Performance of one n x n multiplication."""

    n: int
    b_layout: str
    memory_time_ns: float
    compute_time_ns: float
    b_stream_bandwidth: float

    @property
    def time_ns(self) -> float:
        """Streaming design: memory and compute overlap."""
        return max(self.memory_time_ns, self.compute_time_ns)

    @property
    def bound(self) -> str:
        return "memory" if self.memory_time_ns > self.compute_time_ns else "compute"

    @property
    def gflops(self) -> float:
        """Complex MACs counted as 8 real flops (4 mult + 4 add)."""
        flops = 8.0 * self.n**3
        return flops / (self.time_ns / 1e9) / 1e9

    def speedup_over(self, other: "MatMulMetrics") -> float:
        """How many times faster this configuration is than ``other``."""
        return other.time_ns / self.time_ns


class MatMulArchitecture:
    """Streaming-panel matmul with a configurable B layout."""

    def __init__(
        self,
        n: int,
        config: SystemConfig | None = None,
        b_layout: str = "block-ddl",
        panel_rows: int = 16,
        macs: int = 512,
        clock_hz: float = 250e6,
    ) -> None:
        if n < 4 or not is_power_of_two(n):
            raise ConfigError(f"matrix size must be a power of two >= 4, got {n}")
        if b_layout not in B_LAYOUTS:
            raise ConfigError(f"b_layout must be one of {B_LAYOUTS}, got {b_layout!r}")
        if panel_rows < 1 or n % panel_rows:
            raise ConfigError(
                f"panel_rows ({panel_rows}) must divide the matrix size ({n})"
            )
        if macs < 1 or clock_hz <= 0:
            raise ConfigError("macs and clock must be positive")
        self.n = n
        self.config = config or SystemConfig()
        self.b_layout_name = b_layout
        self.panel_rows = panel_rows
        self.macs = macs
        self.clock_hz = clock_hz

    # ---------------------------------------------------------------- layout
    def build_b_layout(self) -> Layout:
        """Instantiate B's layout."""
        n = self.n
        if self.b_layout_name == "row-major":
            return RowMajorLayout(n, n)
        if self.b_layout_name == "column-major":
            return ColumnMajorLayout(n, n)
        geo = optimal_block_geometry(self.config.memory, n)
        return BlockDDLLayout(n, n, geo.width, geo.height)

    # ------------------------------------------------------------- evaluate
    def evaluate(self, max_requests: int = 65_536) -> MatMulMetrics:
        """Trace-driven performance of the whole multiplication."""
        n = self.n
        memory = Memory3D(self.config.memory)
        peak = self.config.peak_bandwidth
        b_layout = self.build_b_layout()

        # Representative B column-stream slice, priced by the simulator.
        if isinstance(b_layout, BlockDDLLayout):
            streams = min(self.config.column_streams, b_layout.blocks_per_row_band)
            trace = block_column_read_trace(
                b_layout, n_streams=streams, block_cols=range(streams)
            )
            discipline = "per_vault"
        else:
            cols = max(1, min(n, max_requests // n))
            trace = column_walk_trace(b_layout, cols=range(cols))
            discipline = (
                "per_vault" if self.b_layout_name == "column-major" else "in_order"
            )
        stats = memory.simulate(trace, discipline, sample=max_requests)
        b_rate = stats.bandwidth_bytes_per_s

        panels = n // self.panel_rows
        b_traffic = panels * n * n * ELEMENT_BYTES          # B re-streamed per panel
        a_traffic = n * n * ELEMENT_BYTES                    # A read once
        c_traffic = n * n * ELEMENT_BYTES                    # C written once
        # A and C are unit-stride streams at device bandwidth.
        stream_rate = min(peak, self.config.peak_bandwidth)
        memory_time_ns = (
            b_traffic / b_rate + (a_traffic + c_traffic) / stream_rate
        ) * 1e9

        complex_macs = n**3
        compute_time_ns = complex_macs / (self.macs * self.clock_hz) * 1e9
        return MatMulMetrics(
            n=n,
            b_layout=self.b_layout_name,
            memory_time_ns=memory_time_ns,
            compute_time_ns=compute_time_ns,
            b_stream_bandwidth=b_rate,
        )

    # -------------------------------------------------------------- function
    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Actually multiply, with B round-tripping through its layout.

        The panel loop mirrors the hardware schedule: A panels arrive
        row-major, B is fetched column by column *through its layout's
        addresses* in a memory image, C panels are emitted row-major.
        """
        n = self.n
        a = np.asarray(a, dtype=np.complex128)
        b = np.asarray(b, dtype=np.complex128)
        if a.shape != (n, n) or b.shape != (n, n):
            raise ConfigError(f"operands must be {n}x{n}, got {a.shape} and {b.shape}")
        b_layout = self.build_b_layout()
        image = MemoryImage(b_layout.footprint_bytes)
        image.store_matrix(b_layout, b)

        c = np.empty((n, n), dtype=np.complex128)
        for start in range(0, n, self.panel_rows):
            panel = a[start : start + self.panel_rows]
            b_streamed = image.load_columns(b_layout, range(n))
            c[start : start + self.panel_rows] = panel @ b_streamed
        return c

    def __repr__(self) -> str:
        return (
            f"MatMulArchitecture(n={self.n}, b_layout={self.b_layout_name!r}, "
            f"panel_rows={self.panel_rows})"
        )


def matmul_baseline(n: int, config: SystemConfig | None = None) -> MatMulArchitecture:
    """All-row-major matmul (the naive port)."""
    return MatMulArchitecture(n, config=config, b_layout="row-major")


def matmul_optimized(n: int, config: SystemConfig | None = None) -> MatMulArchitecture:
    """Matmul with B in the Eq. (1) block layout."""
    return MatMulArchitecture(n, config=config, b_layout="block-ddl")
