"""repro -- Optimal Dynamic Data Layouts for 2D FFT on 3D Memory Integrated FPGA.

A from-scratch Python reproduction of Chen, Singapura & Prasanna
(PACT 2015): an HMC-like 3D memory timing simulator, streaming FFT
kernels with FPGA cost models, the block dynamic data layout with the
paper's Eq. (1) optimizer, an on-chip permutation network, and the
baseline/optimized 2D FFT architectures with analytic and trace-driven
evaluation.

Quickstart::

    from repro import AnalyticModel, format_table1

    model = AnalyticModel()
    print(format_table1(model.table1()))

See README.md for the full tour, DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    AnalyticModel,
    Architecture2DFFT,
    BaselineArchitecture,
    KernelConfig,
    MemoryImage,
    OptimizedArchitecture,
    PhaseMetrics,
    SystemConfig,
    SystemMetrics,
    format_table1,
    format_table2,
)
from repro.apps import (
    RadarTarget,
    fft_convolve2d,
    filter_image,
    range_doppler_map,
)
from repro.core.config import pact15_system_config
from repro.core.pipeline import PipelineConfig, StreamingPipeline
from repro.energy import (
    EnergyBreakdown,
    EnergyModel,
    EnergyParameters,
    pact15_energy_params,
)
from repro.fft import FFT2D, StreamingFFT1D
from repro.fft.fft3d import FFT3D, FFT3DModel
from repro.framework import (
    AccessPattern,
    KernelSpec,
    LayoutPlanner,
    PhaseSpec,
    fft2d_spec,
    matmul_spec,
    transpose_spec,
)
from repro.layouts import (
    BlockDDLLayout,
    BlockGeometry,
    ColumnMajorLayout,
    Layout,
    LayoutRegime,
    RowMajorLayout,
    TiledLayout,
    optimal_block_geometry,
)
from repro.memory2d import Memory2D, Memory2DConfig, ddr3_like_config
from repro.memory3d import (
    AccessStats,
    AddressMapping,
    Memory3D,
    Memory3DConfig,
    TimingParameters,
    pact15_hmc_config,
)
from repro.fft.streaming import ParallelStreamingFFT, R2SDFPipeline
from repro.matmul import MatMulArchitecture, matmul_baseline, matmul_optimized
from repro.memory3d.scheduler import OpenPageScheduler
from repro.obs import EventTrace, MetricsRegistry, SpanTimeline, chrome_trace
from repro.permutation import ControllingUnit, PermutationNetwork
from repro.permutation.bitonic import BitonicPermutationRouter
from repro.reporting import reproduce_report
from repro.trace import (
    CompiledTrace,
    Request,
    TraceArray,
    block_column_read_trace,
    block_write_trace,
    column_walk_trace,
    compile_trace,
    row_walk_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "AccessStats",
    "AddressMapping",
    "AnalyticModel",
    "Architecture2DFFT",
    "BaselineArchitecture",
    "BitonicPermutationRouter",
    "BlockDDLLayout",
    "BlockGeometry",
    "ColumnMajorLayout",
    "CompiledTrace",
    "ControllingUnit",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParameters",
    "EventTrace",
    "FFT2D",
    "FFT3D",
    "FFT3DModel",
    "KernelConfig",
    "KernelSpec",
    "Layout",
    "LayoutPlanner",
    "LayoutRegime",
    "MatMulArchitecture",
    "Memory2D",
    "Memory2DConfig",
    "Memory3D",
    "Memory3DConfig",
    "MemoryImage",
    "MetricsRegistry",
    "OpenPageScheduler",
    "OptimizedArchitecture",
    "ParallelStreamingFFT",
    "PermutationNetwork",
    "PhaseMetrics",
    "PhaseSpec",
    "PipelineConfig",
    "R2SDFPipeline",
    "RadarTarget",
    "Request",
    "RowMajorLayout",
    "SpanTimeline",
    "StreamingFFT1D",
    "StreamingPipeline",
    "SystemConfig",
    "SystemMetrics",
    "TiledLayout",
    "TimingParameters",
    "TraceArray",
    "block_column_read_trace",
    "block_write_trace",
    "chrome_trace",
    "column_walk_trace",
    "compile_trace",
    "ddr3_like_config",
    "fft2d_spec",
    "fft_convolve2d",
    "filter_image",
    "format_table1",
    "format_table2",
    "matmul_baseline",
    "matmul_optimized",
    "matmul_spec",
    "optimal_block_geometry",
    "pact15_energy_params",
    "pact15_hmc_config",
    "pact15_system_config",
    "range_doppler_map",
    "reproduce_report",
    "row_walk_trace",
    "transpose_spec",
    "__version__",
]
