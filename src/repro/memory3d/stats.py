"""Measured results of a trace-driven memory simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import to_gbitps, to_gbps


@dataclass
class AccessStats:
    """Aggregate statistics for one simulated trace.

    Attributes:
        requests: number of element accesses served.
        bytes_transferred: payload bytes moved.
        elapsed_ns: time from the first request issue to the last completion.
        row_activations: number of row activates performed (row-buffer misses).
        row_hits: accesses served from an already-open row.
        per_vault_busy_ns: time each vault spent serving its queue.
        first_response_ns: completion time of the first request (access latency
            seen by the consumer before streaming begins).
    """

    requests: int = 0
    bytes_transferred: int = 0
    elapsed_ns: float = 0.0
    row_activations: int = 0
    row_hits: int = 0
    per_vault_busy_ns: dict[int, float] = field(default_factory=dict)
    first_response_ns: float = 0.0
    #: Open-loop request latency (arrival to completion); zero for
    #: closed-loop traces, where "latency" is not well defined.
    mean_request_latency_ns: float = 0.0
    max_request_latency_ns: float = 0.0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Average achieved bandwidth over the trace."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.bytes_transferred / (self.elapsed_ns / 1e9)

    @property
    def bandwidth_gbps(self) -> float:
        """Average achieved bandwidth in GB/s."""
        return to_gbps(self.bandwidth_bytes_per_s)

    @property
    def bandwidth_gbitps(self) -> float:
        """Average achieved bandwidth in Gb/s (the unit of Table 1's baseline)."""
        return to_gbitps(self.bandwidth_bytes_per_s)

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses served from an open row."""
        if not self.requests:
            return 0.0
        return self.row_hits / self.requests

    def utilization(self, peak_bandwidth_bytes_per_s: float) -> float:
        """Fraction of a peak bandwidth achieved (0..1)."""
        if peak_bandwidth_bytes_per_s <= 0:
            return 0.0
        return self.bandwidth_bytes_per_s / peak_bandwidth_bytes_per_s

    def merged_with(self, other: "AccessStats") -> "AccessStats":
        """Combine two sequentially-executed traces (times add).

        Latency semantics: counts, bytes, elapsed time and per-vault busy
        times add; ``mean_request_latency_ns`` is the request-weighted
        mean of the two runs and ``max_request_latency_ns`` the larger
        maximum.  ``first_response_ns`` keeps *this* run's value and
        deliberately drops ``other``'s -- in a sequential composition the
        combined run's first response is the first run's first response,
        so the second run's value has no meaning for the merged stats.
        """
        busy = dict(self.per_vault_busy_ns)
        for vault, t in other.per_vault_busy_ns.items():
            busy[vault] = busy.get(vault, 0.0) + t
        total_requests = self.requests + other.requests
        mean_latency = 0.0
        if total_requests:
            mean_latency = (
                self.mean_request_latency_ns * self.requests
                + other.mean_request_latency_ns * other.requests
            ) / total_requests
        return AccessStats(
            requests=total_requests,
            bytes_transferred=self.bytes_transferred + other.bytes_transferred,
            elapsed_ns=self.elapsed_ns + other.elapsed_ns,
            row_activations=self.row_activations + other.row_activations,
            row_hits=self.row_hits + other.row_hits,
            per_vault_busy_ns=busy,
            first_response_ns=self.first_response_ns,
            mean_request_latency_ns=mean_latency,
            max_request_latency_ns=max(
                self.max_request_latency_ns, other.max_request_latency_ns
            ),
        )

    def scaled(self, factor: float) -> "AccessStats":
        """Extrapolate a sampled simulation to ``factor`` times the work.

        Counts and times scale linearly; per-request latency quantities do
        not.  ``first_response_ns``, ``mean_request_latency_ns`` and
        ``max_request_latency_ns`` are properties of individual requests
        rather than totals, and the simulated prefix is assumed
        representative of the steady state, so all three carry over
        unchanged.  Used when a representative slice of a huge trace was
        simulated.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return AccessStats(
            requests=round(self.requests * factor),
            bytes_transferred=round(self.bytes_transferred * factor),
            elapsed_ns=self.elapsed_ns * factor,
            row_activations=round(self.row_activations * factor),
            row_hits=round(self.row_hits * factor),
            per_vault_busy_ns={
                v: t * factor for v, t in self.per_vault_busy_ns.items()
            },
            first_response_ns=self.first_response_ns,
            mean_request_latency_ns=self.mean_request_latency_ns,
            max_request_latency_ns=self.max_request_latency_ns,
        )
