"""Physical address decoding for the 3D memory.

The device is addressed linearly in bytes.  Addresses are split, low bits
first, into::

    [ row | bank | vault | offset-within-row ]

i.e. consecutive row-sized chunks interleave across vaults first (so a
sequential stream engages all vaults), then across the banks of each vault,
then move to the next row.  This "chunk-interleaved" map is the natural
high-bandwidth map for an HMC-like part and is the one under which the
paper's baseline numbers reproduce (see DESIGN.md section 3).

A ``DecodedAddress`` identifies the (vault, bank, row) triple that a request
activates plus the column (byte offset) within the row.  The ``bank`` index
runs over all banks of a vault (layers x banks-per-layer); ``layer_of_bank``
recovers the layer, which matters because activations to banks on different
layers of the same vault pipeline at ``t_in_vault`` rather than
``t_diff_bank``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError
from repro.memory3d.config import Memory3DConfig
from repro.units import ilog2


@dataclass(frozen=True)
class DecodedAddress:
    """Coordinates of one byte address inside the stack."""

    vault: int
    bank: int
    row: int
    column: int

    def same_row(self, other: "DecodedAddress") -> bool:
        """True if both addresses fall in the same open row of the same bank."""
        return (
            self.vault == other.vault
            and self.bank == other.bank
            and self.row == other.row
        )


class AddressMapping:
    """Decode byte addresses to (vault, bank, row, column) coordinates.

    Decoding is exposed both per-address (:meth:`decode`) and vectorized over
    numpy arrays (:meth:`decode_array`), which the fast simulator engine uses.
    """

    def __init__(self, config: Memory3DConfig) -> None:
        self.config = config
        self._offset_bits = ilog2(config.row_bytes)
        self._vault_bits = ilog2(config.vaults)
        self._bank_bits = ilog2(config.banks_per_vault)
        self._vault_mask = config.vaults - 1
        self._bank_mask = config.banks_per_vault - 1
        self._offset_mask = config.row_bytes - 1

    # ------------------------------------------------------------------ scalar
    def decode(self, address: int) -> DecodedAddress:
        """Decode one byte address.

        Raises:
            AddressError: if the address is negative or beyond capacity.
        """
        if address < 0 or address >= self.config.capacity_bytes:
            raise AddressError(
                f"address {address:#x} outside device capacity "
                f"{self.config.capacity_bytes:#x}"
            )
        column = address & self._offset_mask
        chunk = address >> self._offset_bits
        vault = chunk & self._vault_mask
        bank = (chunk >> self._vault_bits) & self._bank_mask
        row = chunk >> (self._vault_bits + self._bank_bits)
        return DecodedAddress(vault=vault, bank=bank, row=row, column=column)

    def encode(self, vault: int, bank: int, row: int, column: int = 0) -> int:
        """Inverse of :meth:`decode` -- build a byte address from coordinates."""
        cfg = self.config
        if not (0 <= vault < cfg.vaults):
            raise AddressError(f"vault {vault} out of range 0..{cfg.vaults - 1}")
        if not (0 <= bank < cfg.banks_per_vault):
            raise AddressError(f"bank {bank} out of range 0..{cfg.banks_per_vault - 1}")
        if not (0 <= row < cfg.rows_per_bank):
            raise AddressError(f"row {row} out of range 0..{cfg.rows_per_bank - 1}")
        if not (0 <= column < cfg.row_bytes):
            raise AddressError(f"column {column} out of range 0..{cfg.row_bytes - 1}")
        chunk = (row << (self._vault_bits + self._bank_bits)) | (bank << self._vault_bits) | vault
        return (chunk << self._offset_bits) | column

    def layer_of_bank(self, bank: int) -> int:
        """Layer on which a vault-local bank index resides.

        Banks are numbered layer-interleaved: bank ``b`` sits on layer
        ``b % layers``, so neighbouring bank indices live on the same layer
        only every ``layers`` steps.  This matches the timing models in
        :mod:`repro.memory3d.vault`.
        """
        return bank % self.config.layers

    # ------------------------------------------------------------- vectorized
    def decode_array(
        self, addresses: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized decode: returns (vault, bank, row, column) arrays."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and (
            addresses.min() < 0 or addresses.max() >= self.config.capacity_bytes
        ):
            raise AddressError("address array contains out-of-capacity addresses")
        column = addresses & self._offset_mask
        chunk = addresses >> self._offset_bits
        vault = chunk & self._vault_mask
        bank = (chunk >> self._vault_bits) & self._bank_mask
        row = chunk >> (self._vault_bits + self._bank_bits)
        return vault, bank, row, column

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"AddressMapping(offset_bits={self._offset_bits}, "
            f"vault_bits={self._vault_bits}, bank_bits={self._bank_bits})"
        )
