"""The trace-driven 3D memory timing simulator.

:class:`Memory3D` consumes a :class:`~repro.trace.request.TraceArray` and
returns an :class:`~repro.memory3d.stats.AccessStats`.  Two service
disciplines are supported:

``in_order``
    One blocking request stream: request *i+1* is issued only when request
    *i* has completed.  This models the paper's baseline, where the
    column-wise FFT fetches one strided element at a time.

``per_vault``
    Each vault's memory controller drains its own queue as fast as the
    vault's constraints allow; the streams run concurrently and the trace
    finishes when the slowest vault does.  This models the optimized
    architecture, whose controlling unit issues block requests to all
    vaults up front.

Two engines price a trace:

``exact``
    The per-request array-state loop below -- the reference semantics.
    Its rules are exactly those of
    :class:`~repro.memory3d.vault.VaultTimingModel` (cross-checked in the
    tests); faults, refresh, recorders and every other feature run here.

``vector``
    The numpy batch engine in :mod:`repro.memory3d.vector`: whole-trace
    array scans, typically one to two orders of magnitude faster.  Both
    engines compute in the shared integer-picosecond timebase
    (:mod:`repro.memory3d.timebase`), so on every supported trace the
    vector engine is *stat-for-stat equal* to the exact one -- the same
    doubles, the same counts -- which CI enforces with a corpus-wide
    equivalence gate.  Configurations the scan form cannot express
    exactly (refresh, storm/throttle fault windows, attached event
    recorders) fall back to the exact engine automatically; the
    fallback reason lands in :attr:`Memory3D.last_fallback_reason`.

Huge traces (an 8192x8192 phase is 67M requests) can be simulated on a
representative prefix and extrapolated with :meth:`Memory3D.simulate`'s
``sample`` argument; the access patterns in this package are periodic in
the device geometry, so a prefix covering many periods predicts the steady
state (validated in the tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SimulationError
from repro.memory3d.address import AddressMapping
from repro.memory3d.config import Memory3DConfig
from repro.memory3d.stats import AccessStats
from repro.memory3d.timebase import (
    mean_latency_ns,
    ns_array_to_ps,
    ns_to_ps,
    ps_array_to_ns,
    ps_to_ns,
)
from repro.memory3d.vault import VaultTimingModel
from repro.obs.events import (
    EV_ACTIVATE,
    EV_BIT_ERROR,
    EV_REFRESH_STALL,
    EV_ROW_HIT,
    EV_TSV_CONTENTION,
    NULL_RECORDER,
    Recorder,
)
from repro.trace.request import TraceArray
from repro.units import ELEMENT_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> memory3d)
    from repro.faults.plan import FaultPlan, FaultState

_NEG_INF = float("-inf")

#: Integer stand-in for "no activation yet" in the picosecond engines.
_NO_ACT = -(1 << 62)

#: Disciplines accepted by :meth:`Memory3D.simulate`.
DISCIPLINES = ("in_order", "per_vault")

#: Engines accepted by :meth:`Memory3D.simulate` (see module docs).
ENGINES = ("exact", "vector")


def _check_trace(trace: Any) -> Any:
    """Validate a trace argument without expanding it.

    Compiled traces are kept compact here: the vector engine prices
    their runs directly, and only the exact engine (or a sampled run)
    forces expansion via :func:`_as_trace`.
    """
    if isinstance(trace, TraceArray) or callable(getattr(trace, "expand", None)):
        return trace
    raise SimulationError(
        f"expected a TraceArray or CompiledTrace, got {type(trace).__name__}"
    )


def _as_trace(trace: Any) -> TraceArray:
    """Accept a TraceArray or anything expandable into one (CompiledTrace)."""
    if isinstance(trace, TraceArray):
        return trace
    expand = getattr(trace, "expand", None)
    if callable(expand):
        return expand()
    raise SimulationError(
        f"expected a TraceArray or CompiledTrace, got {type(trace).__name__}"
    )


class Memory3D:
    """Facade over the address mapping and the timing engines.

    An optional :class:`~repro.obs.events.Recorder` (e.g. an
    :class:`~repro.obs.events.EventTrace`) receives typed per-request
    events -- ACTIVATE, ROW_HIT, REFRESH_STALL, TSV_CONTENTION -- from
    both serial engines.  The default :data:`~repro.obs.events.NULL_RECORDER`
    disables recording; the hot loop then pays a single pointer test per
    request (benchmarked in ``benchmarks/bench_observability.py``).
    An enabled recorder forces the exact engine (the vector engine
    aggregates counts instead of emitting per-request events).
    """

    def __init__(
        self,
        config: Memory3DConfig | None = None,
        recorder: Recorder | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config or Memory3DConfig()
        self.mapping = AddressMapping(self.config)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: Default fault plan applied to every simulation (``None`` = healthy);
        #: the per-call ``fault_plan`` argument overrides it.
        self.fault_plan = fault_plan
        #: :meth:`~repro.faults.plan.FaultState.summary` of the most recent
        #: faulted simulation (``None`` until one runs).
        self.last_fault_summary: dict[str, Any] | None = None
        #: Engine that actually priced the most recent simulation
        #: (``"exact"`` or ``"vector"``; ``None`` until one runs).
        self.last_engine: str | None = None
        #: Why a ``engine="vector"`` request fell back to the exact engine
        #: (``None`` when it did not).
        self.last_fallback_reason: str | None = None

    # ------------------------------------------------------------------ public
    def simulate(
        self,
        trace: TraceArray,
        discipline: str = "in_order",
        sample: int | None = None,
        fault_plan: FaultPlan | None = None,
        engine: str = "exact",
    ) -> AccessStats:
        """Run a trace and return aggregate statistics.

        Args:
            trace: the element accesses, in program order (a
                :class:`~repro.trace.request.TraceArray` or a
                :class:`~repro.trace.compile.CompiledTrace`, which the
                vector engine prices run by run and the exact engine
                expands first).
            discipline: ``"in_order"`` or ``"per_vault"`` (see module docs).
            sample: if given and smaller than the trace, simulate only the
                first ``sample`` requests and linearly extrapolate counts and
                elapsed time to the full trace length.  A recorder attached
                to this simulator sees events for the simulated prefix only
                (events are never extrapolated).
            fault_plan: a :class:`~repro.faults.plan.FaultPlan` to degrade
                this run with (overrides the constructor plan; ``None``
                falls back to it).  The fault accounting of the run lands
                in :attr:`last_fault_summary`.
            engine: ``"exact"`` (the per-request reference loop) or
                ``"vector"`` (the numpy batch engine; stat-for-stat equal
                on supported traces, with automatic exact fallback
                otherwise -- see :attr:`last_fallback_reason`).
        """
        trace = _check_trace(trace)
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown discipline {discipline!r}; expected one of {DISCIPLINES}"
            )
        total = len(trace)
        if total == 0:
            return AccessStats()
        run = trace
        scale = 1.0
        if sample is not None and 0 < sample < total:
            run = _as_trace(trace).head(sample)
            scale = total / sample
        faults = self._compile_faults(fault_plan, len(run))
        stats, _ = self._dispatch(run, discipline, faults, False, engine)
        if faults is not None:
            self.last_fault_summary = faults.summary()
        if scale != 1.0:
            stats = stats.scaled(scale)
        return stats

    def _compile_faults(
        self, fault_plan: FaultPlan | None, n_requests: int
    ) -> FaultState | None:
        """Compile the effective plan for one run (``None`` when healthy)."""
        plan = fault_plan if fault_plan is not None else self.fault_plan
        if plan is None or not plan.injectors:
            return None
        from repro.faults.plan import compile_plan

        return compile_plan(plan, self.config, n_requests)

    def _dispatch(
        self,
        run: TraceArray,
        discipline: str,
        faults: FaultState | None,
        record: bool,
        engine: str,
    ) -> tuple[AccessStats, np.ndarray | None]:
        """Route one prepared run to the requested engine.

        ``engine="vector"`` falls back to the exact engine when the trace
        or configuration is outside the scan form's support envelope (or
        if the scan fails to converge); the reason is kept in
        :attr:`last_fallback_reason` and the engine that actually ran in
        :attr:`last_engine`.
        """
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.last_fallback_reason = None
        if engine == "vector":
            from repro.memory3d import vector

            reason = vector.unsupported_reason(self.config, self.recorder, faults)
            if reason is None:
                try:
                    out = vector.simulate_vector(
                        self, run, discipline, faults, record
                    )
                except vector.VectorConvergenceError as exc:
                    reason = str(exc)
                else:
                    self.last_engine = "vector"
                    return out
            self.last_fallback_reason = reason
        self.last_engine = "exact"
        run = _as_trace(run)
        if faults is not None:
            return self._simulate_faulted(run, discipline, faults, record)
        return self._simulate_fast(run, discipline, record)

    def simulate_reference(
        self, trace: TraceArray, discipline: str = "in_order"
    ) -> AccessStats:
        """Reference engine built on :class:`VaultTimingModel` (slow, exact).

        Used by the tests to validate the array-state hot loop; behaviour is
        identical by construction of the shared rules.  Feeds the same
        event stream to an attached recorder as the fast engine does, so
        the instrumentation is cross-checked the same way the timing is.
        """
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown discipline {discipline!r}; expected one of {DISCIPLINES}"
            )
        recorder = self.recorder
        record_event = recorder.record if recorder.enabled else None
        timing = self.config.timing
        vaults = [
            VaultTimingModel(self.config, vid) for vid in range(self.config.vaults)
        ]
        v_ids, banks, rows, _ = self.mapping.decode_array(trace.addresses)
        arrivals = trace.arrival_ns
        if arrivals is not None:
            # The production engines snap arrivals onto the integer-ps
            # grid at their boundary; the reference must gate on the
            # same instants or latencies drift by up to 0.5 ps/request.
            arrivals = ps_array_to_ns(ns_array_to_ps(arrivals))
        stream_ready = 0.0
        per_vault_ready = [0.0] * self.config.vaults
        first_completion = None
        last_completion = 0.0
        latency_sum = 0.0
        latency_max = 0.0
        for i, (vid, bank, row) in enumerate(
            zip(v_ids.tolist(), banks.tolist(), rows.tolist(), strict=True)
        ):
            ready = stream_ready if discipline == "in_order" else per_vault_ready[vid]
            if arrivals is not None and arrivals[i] > ready:
                ready = float(arrivals[i])
            result = vaults[vid].service(bank, row, ready)
            if record_event is not None:
                if result.hit:
                    if result.tsv_wait_ns > 0.0:
                        record_event(
                            EV_TSV_CONTENTION, vid, bank, row, ready,
                            result.tsv_wait_ns,
                        )
                else:
                    record_event(
                        EV_ACTIVATE, vid, bank, row, result.activate_ns,
                        timing.t_diff_row,
                    )
                    if result.tsv_wait_ns > 0.0:
                        record_event(
                            EV_TSV_CONTENTION, vid, bank, row,
                            result.activate_ns, result.tsv_wait_ns,
                        )
                if result.refresh_stall_ns > 0.0:
                    record_event(
                        EV_REFRESH_STALL, vid, bank, row,
                        result.refresh_stall_start_ns, result.refresh_stall_ns,
                    )
                if result.hit:
                    record_event(
                        EV_ROW_HIT, vid, bank, row,
                        result.completion_ns - timing.t_in_row, timing.t_in_row,
                    )
            if arrivals is not None:
                latency = result.completion_ns - float(arrivals[i])
                latency_sum += latency
                latency_max = max(latency_max, latency)
            if discipline == "in_order":
                stream_ready = result.completion_ns
            else:
                per_vault_ready[vid] = result.completion_ns
            if first_completion is None:
                first_completion = result.completion_ns
            last_completion = max(last_completion, result.completion_ns)
        activations = sum(v.activations for v in vaults)
        hits = sum(v.hits for v in vaults)
        busy = {
            v.vault_id: v.tsv_next_ns for v in vaults if v.tsv_next_ns > 0.0
        }
        return AccessStats(
            requests=len(trace),
            bytes_transferred=trace.total_bytes,
            elapsed_ns=last_completion,
            row_activations=activations,
            row_hits=hits,
            per_vault_busy_ns=busy,
            first_response_ns=first_completion or 0.0,
            mean_request_latency_ns=(
                latency_sum / len(trace)
                if arrivals is not None and len(trace)
                else 0.0
            ),
            max_request_latency_ns=latency_max,
        )

    def simulate_tagged(
        self,
        trace: TraceArray,
        tags: np.ndarray,
        discipline: str = "per_vault",
        fault_plan: FaultPlan | None = None,
        engine: str = "exact",
    ) -> dict[int, AccessStats]:
        """Run a merged multi-tenant trace and split the stats per tag.

        Args:
            trace: the interleaved requests of all tenants, in issue order.
            tags: integer tenant id per request.
            engine: ``"exact"`` or ``"vector"`` (same contract as
                :meth:`simulate`).

        Returns:
            Per-tenant :class:`AccessStats`.  Each tenant's
            ``elapsed_ns`` spans its own first-to-last completion (with
            ``first_response_ns`` kept as the absolute first completion),
            so a late-starting tenant's bandwidth reflects what it
            actually extracted while it was active -- not the time other
            tenants ran before it.  A single-request tenant has a zero
            span and therefore reports zero bandwidth (a duration-free
            sample has no rate).  Row-activation/hit counts are
            global (attributed to the shared banks) and reported only on
            the merged key ``-1``.
        """
        trace = _as_trace(trace)
        tags = np.asarray(tags, dtype=np.int64)
        if tags.shape != trace.addresses.shape:
            raise SimulationError("tags shape must match the trace")
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown discipline {discipline!r}; expected one of {DISCIPLINES}"
            )
        if len(trace) == 0:
            return {-1: AccessStats()}
        faults = self._compile_faults(fault_plan, len(trace))
        merged, completions = self._dispatch(trace, discipline, faults, True, engine)
        if faults is not None:
            self.last_fault_summary = faults.summary()
        assert completions is not None
        result: dict[int, AccessStats] = {-1: merged}
        for tag in np.unique(tags).tolist():
            mask = tags == tag
            times = completions[mask]
            count = int(mask.sum())
            result[int(tag)] = AccessStats(
                requests=count,
                bytes_transferred=count * ELEMENT_BYTES,
                elapsed_ns=float(times.max() - times.min()),
                row_activations=0,
                row_hits=0,
                first_response_ns=float(times.min()),
            )
        return result

    def bandwidth_timeline(
        self,
        trace: TraceArray,
        discipline: str = "in_order",
        bucket_ns: float = 100.0,
        sample: int | None = None,
        engine: str = "exact",
    ) -> np.ndarray:
        """Achieved bandwidth (bytes/second) per time bucket.

        Runs the trace (optionally a sampled prefix) and histograms the
        per-request completion times -- useful for spotting warm-up
        transients, refresh dips and phase boundaries.  Returns an array
        whose entry *i* is the average bandwidth over
        ``[i * bucket_ns, (i+1) * bucket_ns)``.
        """
        if discipline not in DISCIPLINES:
            raise SimulationError(
                f"unknown discipline {discipline!r}; expected one of {DISCIPLINES}"
            )
        if bucket_ns <= 0:
            raise SimulationError(f"bucket_ns must be positive, got {bucket_ns}")
        run = _check_trace(trace)
        if sample is not None and 0 < sample < len(trace):
            run = _as_trace(trace).head(sample)
        if len(run) == 0:
            return np.zeros(0)
        _, completions = self._dispatch(run, discipline, None, True, engine)
        assert completions is not None
        buckets = np.floor_divide(completions, bucket_ns).astype(np.int64)
        counts = np.bincount(buckets)
        return counts * ELEMENT_BYTES / (bucket_ns / 1e9)

    def classify_transitions(self, trace: TraceArray) -> dict[str, int]:
        """Vectorized classification of consecutive-request transitions.

        Returns counts of ``same_row`` / ``diff_row_same_bank`` /
        ``diff_bank_same_vault`` / ``diff_vault`` transitions -- a cheap
        fingerprint of an access pattern that is useful in tests and reports
        without running the timing engines.
        """
        if len(trace) < 2:
            return {
                "same_row": 0,
                "diff_row_same_bank": 0,
                "diff_bank_same_vault": 0,
                "diff_vault": 0,
            }
        vault, bank, row, _ = self.mapping.decode_array(trace.addresses)
        same_vault = vault[1:] == vault[:-1]
        same_bank = same_vault & (bank[1:] == bank[:-1])
        same_row = same_bank & (row[1:] == row[:-1])
        return {
            "same_row": int(same_row.sum()),
            "diff_row_same_bank": int((same_bank & ~same_row).sum()),
            "diff_bank_same_vault": int((same_vault & ~same_bank).sum()),
            "diff_vault": int((~same_vault).sum()),
        }

    # -------------------------------------------------------------- hot loop
    def _simulate_fast(
        self, trace: TraceArray, discipline: str, record: bool = False
    ) -> tuple[AccessStats, np.ndarray | None]:
        """Array-state per-request engine (same rules as VaultTimingModel).

        All internal arithmetic is integer picoseconds (see
        :mod:`repro.memory3d.timebase`): associativity of integer
        ``max``/``add`` is what makes the vectorized engine's scans
        bit-identical to this loop.  Nanoseconds are converted at entry
        (timing parameters, arrivals) and exit (stats, completions).

        With ``record=True`` the per-request completion times are returned
        alongside the stats (for :meth:`bandwidth_timeline`).

        Event recording is gated on a single local (``record_event``):
        with the default :class:`~repro.obs.events.NullRecorder` the loop
        body performs exactly one extra pointer comparison per request,
        keeping the uninstrumented path at seed throughput.
        """
        cfg = self.config
        timing = cfg.timing
        t_in_row = ns_to_ps(timing.t_in_row)
        t_in_vault = ns_to_ps(timing.t_in_vault)
        t_diff_bank = ns_to_ps(timing.t_diff_bank)
        t_diff_row = ns_to_ps(timing.t_diff_row)
        n_layers = cfg.layers
        banks_per_vault = cfg.banks_per_vault
        in_order = discipline == "in_order"
        recorder = self.recorder
        record_event = recorder.record if recorder.enabled else None
        stall = 0
        stall_ts = 0
        refresh = cfg.refresh
        if refresh is not None:
            refi = ns_to_ps(refresh.t_refi_ns)
            rfc = ns_to_ps(refresh.t_rfc_ns)
            refresh_offset = [
                ns_to_ps(v * refresh.t_refi_ns / cfg.vaults)
                for v in range(cfg.vaults)
            ]

        vaults_arr, banks_arr, rows_arr, _ = self.mapping.decode_array(trace.addresses)
        # Global bank ids flatten (vault, bank) so state lives in flat lists.
        gbank_list = (vaults_arr * banks_per_vault + banks_arr).tolist()
        vault_list = vaults_arr.tolist()
        bank_list = banks_arr.tolist()
        row_list = rows_arr.tolist()
        arrival_list = (
            ns_array_to_ps(trace.arrival_ns).tolist()
            if trace.arrival_ns is not None
            else None
        )

        n_banks = cfg.total_banks
        n_vaults = cfg.vaults
        open_row = [-1] * n_banks
        bank_next_act = [0] * n_banks
        tsv_next = [0] * n_vaults
        last_act_time = [_NO_ACT] * n_vaults
        last_act_layer = [-1] * n_vaults
        last_act_bank = [-1] * n_vaults
        vault_ready = [0] * n_vaults
        stream_ready = 0

        activations = 0
        hits = 0
        first_completion = 0
        last_completion = 0
        completions: list[int] | None = [] if record else None

        latency_sum = 0
        latency_max = 0

        for i, gbank in enumerate(gbank_list):
            vid = vault_list[i]
            row = row_list[i]
            ready = stream_ready if in_order else vault_ready[vid]
            if arrival_list is not None and arrival_list[i] > ready:
                ready = arrival_list[i]
            if open_row[gbank] == row:
                hits += 1
                tsv_prev = tsv_next[vid]
                beat = tsv_prev if tsv_prev > ready else ready
                if refresh is not None:
                    stall = 0
                    phase = (beat - refresh_offset[vid]) % refi
                    if phase < rfc:
                        stall = rfc - phase
                        stall_ts = beat
                        beat += stall
                completion = beat + t_in_row
                if record_event is not None:
                    bank = bank_list[i]
                    if tsv_prev > ready:
                        record_event(
                            EV_TSV_CONTENTION, vid, bank, row, ps_to_ns(ready),
                            ps_to_ns(tsv_prev - ready),
                        )
                    if stall > 0:
                        record_event(
                            EV_REFRESH_STALL, vid, bank, row,
                            ps_to_ns(stall_ts), ps_to_ns(stall),
                        )
                    record_event(
                        EV_ROW_HIT, vid, bank, row, ps_to_ns(beat),
                        timing.t_in_row,
                    )
            else:
                act = bank_next_act[gbank]
                if ready > act:
                    act = ready
                prev_act = last_act_time[vid]
                bank = bank_list[i]
                if prev_act != _NO_ACT and last_act_bank[vid] != bank:
                    layer = bank % n_layers
                    gap = t_diff_bank if layer == last_act_layer[vid] else t_in_vault
                    gated = prev_act + gap
                    if gated > act:
                        act = gated
                if refresh is not None:
                    stall = 0
                    stall_ts = act
                    phase = (act - refresh_offset[vid]) % refi
                    if phase < rfc:
                        stall = rfc - phase
                        act += stall
                open_row[gbank] = row
                bank_next_act[gbank] = act + t_diff_row
                last_act_time[vid] = act
                last_act_layer[vid] = bank % n_layers
                last_act_bank[vid] = bank
                activations += 1
                tsv_prev = tsv_next[vid]
                beat = tsv_prev if tsv_prev > act else act
                if refresh is not None:
                    phase = (beat - refresh_offset[vid]) % refi
                    if phase < rfc:
                        extra = rfc - phase
                        if stall == 0:
                            stall_ts = beat
                        stall += extra
                        beat += extra
                completion = beat + t_in_row
                if record_event is not None:
                    record_event(
                        EV_ACTIVATE, vid, bank, row, ps_to_ns(act),
                        timing.t_diff_row,
                    )
                    if tsv_prev > act:
                        record_event(
                            EV_TSV_CONTENTION, vid, bank, row, ps_to_ns(act),
                            ps_to_ns(tsv_prev - act),
                        )
                    if stall > 0:
                        record_event(
                            EV_REFRESH_STALL, vid, bank, row,
                            ps_to_ns(stall_ts), ps_to_ns(stall),
                        )
            tsv_next[vid] = completion
            if in_order:
                stream_ready = completion
            else:
                vault_ready[vid] = completion
            if i == 0:
                first_completion = completion
            if completion > last_completion:
                last_completion = completion
            if completions is not None:
                completions.append(completion)
            if arrival_list is not None:
                latency = completion - arrival_list[i]
                latency_sum += latency
                if latency > latency_max:
                    latency_max = latency

        busy = {
            vid: ps_to_ns(tsv_next[vid])
            for vid in range(n_vaults)
            if tsv_next[vid] > 0
        }
        n_requests = len(trace)
        stats = AccessStats(
            requests=n_requests,
            bytes_transferred=n_requests * ELEMENT_BYTES,
            elapsed_ns=ps_to_ns(last_completion),
            row_activations=activations,
            row_hits=hits,
            per_vault_busy_ns=busy,
            first_response_ns=ps_to_ns(first_completion),
            mean_request_latency_ns=(
                mean_latency_ns(latency_sum, n_requests)
                if arrival_list is not None
                else 0.0
            ),
            max_request_latency_ns=ps_to_ns(latency_max),
        )
        recorded = (
            ps_array_to_ns(np.asarray(completions, dtype=np.int64))
            if record
            else None
        )
        return stats, recorded

    # ----------------------------------------------------------- faulted loop
    def _simulate_faulted(
        self,
        trace: TraceArray,
        discipline: str,
        faults: FaultState,
        record: bool = False,
    ) -> tuple[AccessStats, np.ndarray | None]:
        """The fault-injected twin of :meth:`_simulate_fast`.

        Kept as a separate loop so the healthy hot path pays nothing for
        the fault machinery; the rules are identical plus, per request:
        vault remapping, storm lockouts, thermal beat stretching, seeded
        jitter and ECC correction penalties.  With an all-identity
        :class:`~repro.faults.plan.FaultState` the produced stats equal
        the fast engine's exactly (cross-checked in the tests).  Like the
        healthy loop, the arithmetic is integer picoseconds; the fault
        plan's ns magnitudes are converted once on entry.
        """
        cfg = self.config
        timing = cfg.timing
        t_in_row = ns_to_ps(timing.t_in_row)
        t_in_vault = ns_to_ps(timing.t_in_vault)
        t_diff_bank = ns_to_ps(timing.t_diff_bank)
        t_diff_row = ns_to_ps(timing.t_diff_row)
        n_layers = cfg.layers
        banks_per_vault = cfg.banks_per_vault
        in_order = discipline == "in_order"
        recorder = self.recorder
        record_event = recorder.record if recorder.enabled else None
        stall = 0
        stall_ts = 0
        refresh = cfg.refresh
        if refresh is not None:
            refi = ns_to_ps(refresh.t_refi_ns)
            rfc = ns_to_ps(refresh.t_rfc_ns)
            refresh_offset = [
                ns_to_ps(v * refresh.t_refi_ns / cfg.vaults)
                for v in range(cfg.vaults)
            ]

        vaults_arr, banks_arr, rows_arr, _ = self.mapping.decode_array(trace.addresses)
        f_remap = faults.remap
        if f_remap is not None:
            remap_arr = np.asarray(f_remap, dtype=vaults_arr.dtype)
            remapped = remap_arr[vaults_arr]
            faults.remapped_requests = int((remapped != vaults_arr).sum())
            vaults_arr = remapped
        f_jitter = (
            ns_array_to_ps(np.asarray(faults.jitter)).tolist()
            if faults.jitter is not None
            else None
        )
        f_storms = tuple(
            (
                ns_to_ps(period),
                ns_to_ps(duration),
                [ns_to_ps(off) for off in offsets],
                vault_set,
            )
            for period, duration, offsets, vault_set in faults.storms
        )
        f_throttle = faults.throttle
        f_errors = faults.error_class
        f_correction = ns_to_ps(faults.correction_ns)

        gbank_list = (vaults_arr * banks_per_vault + banks_arr).tolist()
        vault_list = vaults_arr.tolist()
        bank_list = banks_arr.tolist()
        row_list = rows_arr.tolist()
        arrival_list = (
            ns_array_to_ps(trace.arrival_ns).tolist()
            if trace.arrival_ns is not None
            else None
        )

        n_banks = cfg.total_banks
        n_vaults = cfg.vaults
        open_row = [-1] * n_banks
        bank_next_act = [0] * n_banks
        tsv_next = [0] * n_vaults
        last_act_time = [_NO_ACT] * n_vaults
        last_act_layer = [-1] * n_vaults
        last_act_bank = [-1] * n_vaults
        vault_ready = [0] * n_vaults
        stream_ready = 0
        if f_throttle is not None:
            window_ps = ns_to_ps(f_throttle[0])
            busy_limit_ps = ns_to_ps(f_throttle[1])
            extra_per_beat = ns_to_ps(timing.t_in_row * f_throttle[2])
            win_start = [0] * n_vaults
            win_busy = [0] * n_vaults
            throttled = [False] * n_vaults

        activations = 0
        hits = 0
        first_completion = 0
        last_completion = 0
        completions: list[int] | None = [] if record else None

        jitter_total = 0
        storm_total = 0
        throttle_total = 0
        latency_sum = 0
        latency_max = 0

        for i, gbank in enumerate(gbank_list):
            vid = vault_list[i]
            row = row_list[i]
            ready = stream_ready if in_order else vault_ready[vid]
            if arrival_list is not None and arrival_list[i] > ready:
                ready = arrival_list[i]
            if open_row[gbank] == row:
                hits += 1
                tsv_prev = tsv_next[vid]
                beat = tsv_prev if tsv_prev > ready else ready
                stall = 0
                if refresh is not None:
                    phase = (beat - refresh_offset[vid]) % refi
                    if phase < rfc:
                        stall = rfc - phase
                        stall_ts = beat
                        beat += stall
                for period, duration, offsets, vault_set in f_storms:
                    if vault_set is not None and vid not in vault_set:
                        continue
                    phase = (beat - offsets[vid]) % period
                    if phase < duration:
                        extra = duration - phase
                        if stall == 0:
                            stall_ts = beat
                        stall += extra
                        beat += extra
                        storm_total += extra
                hit = True
                act = beat  # event timestamp base for the beat
            else:
                act = bank_next_act[gbank]
                if ready > act:
                    act = ready
                prev_act = last_act_time[vid]
                bank = bank_list[i]
                if prev_act != _NO_ACT and last_act_bank[vid] != bank:
                    layer = bank % n_layers
                    gap = t_diff_bank if layer == last_act_layer[vid] else t_in_vault
                    gated = prev_act + gap
                    if gated > act:
                        act = gated
                stall = 0
                stall_ts = act
                if refresh is not None:
                    phase = (act - refresh_offset[vid]) % refi
                    if phase < rfc:
                        stall = rfc - phase
                        act += stall
                for period, duration, offsets, vault_set in f_storms:
                    if vault_set is not None and vid not in vault_set:
                        continue
                    phase = (act - offsets[vid]) % period
                    if phase < duration:
                        extra = duration - phase
                        stall += extra
                        act += extra
                        storm_total += extra
                open_row[gbank] = row
                bank_next_act[gbank] = act + t_diff_row
                last_act_time[vid] = act
                last_act_layer[vid] = bank % n_layers
                last_act_bank[vid] = bank
                activations += 1
                tsv_prev = tsv_next[vid]
                beat = tsv_prev if tsv_prev > act else act
                if refresh is not None:
                    phase = (beat - refresh_offset[vid]) % refi
                    if phase < rfc:
                        extra = rfc - phase
                        if stall == 0:
                            stall_ts = beat
                        stall += extra
                        beat += extra
                for period, duration, offsets, vault_set in f_storms:
                    if vault_set is not None and vid not in vault_set:
                        continue
                    phase = (beat - offsets[vid]) % period
                    if phase < duration:
                        extra = duration - phase
                        if stall == 0:
                            stall_ts = beat
                        stall += extra
                        beat += extra
                        storm_total += extra
                hit = False

            # Thermal throttling: close windows that ended before this beat,
            # then stretch the beat if the vault is currently derated.
            beat_time = t_in_row
            if f_throttle is not None:
                ws = win_start[vid]
                if beat >= ws + window_ps:
                    elapsed_windows = (beat - ws) // window_ps
                    hot = win_busy[vid] > busy_limit_ps
                    # Only an *adjacent* hot window carries the derate over;
                    # any idle window in between lets the vault cool.
                    throttled[vid] = hot and elapsed_windows == 1
                    if hot:
                        faults.throttled_windows += 1
                    win_start[vid] = ws + elapsed_windows * window_ps
                    win_busy[vid] = 0
                if throttled[vid]:
                    beat_time += extra_per_beat
                    throttle_total += extra_per_beat
                win_busy[vid] += beat_time
            completion = beat + beat_time
            if f_jitter is not None:
                jit = f_jitter[i]
                completion += jit
                jitter_total += jit
            err = 0
            if f_errors is not None:
                err = f_errors[i]
                if err == 1:
                    completion += f_correction
                    faults.corrected_errors += 1
                elif err == 2:
                    faults.uncorrectable_errors += 1

            if record_event is not None:
                bank = bank_list[i]
                if hit:
                    if tsv_prev > ready:
                        record_event(
                            EV_TSV_CONTENTION, vid, bank, row, ps_to_ns(ready),
                            ps_to_ns(tsv_prev - ready),
                        )
                else:
                    record_event(
                        EV_ACTIVATE, vid, bank, row, ps_to_ns(act),
                        timing.t_diff_row,
                    )
                    if tsv_prev > act:
                        record_event(
                            EV_TSV_CONTENTION, vid, bank, row, ps_to_ns(act),
                            ps_to_ns(tsv_prev - act),
                        )
                if stall > 0:
                    record_event(
                        EV_REFRESH_STALL, vid, bank, row,
                        ps_to_ns(stall_ts), ps_to_ns(stall),
                    )
                if hit:
                    record_event(
                        EV_ROW_HIT, vid, bank, row, ps_to_ns(beat),
                        ps_to_ns(beat_time),
                    )
                if err:
                    record_event(
                        EV_BIT_ERROR, vid, bank, row, ps_to_ns(beat),
                        faults.correction_ns if err == 1 else 0.0,
                    )

            tsv_next[vid] = completion
            if in_order:
                stream_ready = completion
            else:
                vault_ready[vid] = completion
            if i == 0:
                first_completion = completion
            if completion > last_completion:
                last_completion = completion
            if completions is not None:
                completions.append(completion)
            if arrival_list is not None:
                latency = completion - arrival_list[i]
                latency_sum += latency
                if latency > latency_max:
                    latency_max = latency

        faults.jitter_ns = ps_to_ns(jitter_total)
        faults.storm_stall_ns = ps_to_ns(storm_total)
        faults.throttle_stall_ns = ps_to_ns(throttle_total)
        busy = {
            vid: ps_to_ns(tsv_next[vid])
            for vid in range(n_vaults)
            if tsv_next[vid] > 0
        }
        n_requests = len(trace)
        stats = AccessStats(
            requests=n_requests,
            bytes_transferred=n_requests * ELEMENT_BYTES,
            elapsed_ns=ps_to_ns(last_completion),
            row_activations=activations,
            row_hits=hits,
            per_vault_busy_ns=busy,
            first_response_ns=ps_to_ns(first_completion),
            mean_request_latency_ns=(
                mean_latency_ns(latency_sum, n_requests)
                if arrival_list is not None
                else 0.0
            ),
            max_request_latency_ns=ps_to_ns(latency_max),
        )
        recorded = (
            ps_array_to_ns(np.asarray(completions, dtype=np.int64))
            if record
            else None
        )
        return stats, recorded
