"""Open-page request reordering (FR-FCFS-style) for the vault controllers.

A natural objection to the paper's approach: couldn't a smarter memory
controller recover the lost column-phase bandwidth by reordering requests
to hit open rows, with no layout change at all?  This module implements
that controller -- a greedy first-ready, first-come-first-served policy
over a lookahead window -- so the question gets a quantitative answer
(``benchmarks/bench_scheduler.py``):

under a row-major layout, two column-walk accesses to the same DRAM row
are a full matrix column apart in the request stream, so the window must
hold ~N requests *per open row* before any hits appear; realistic windows
(tens of requests) recover essentially nothing, while the DDL reaches
peak with plain in-order controllers.  Scheduling is not a substitute for
layout.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.memory3d.memory import Memory3D
from repro.memory3d.stats import AccessStats
from repro.obs.metrics import MetricsRegistry
from repro.trace.request import TraceArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> memory3d)
    from repro.faults.plan import FaultPlan

#: Upper bucket bounds for the scheduler's queue-depth histogram.
_DEPTH_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class ScheduledResult:
    """Outcome of a scheduled simulation."""

    stats: AccessStats
    reordered: TraceArray
    window: int
    displaced: int  # requests served out of arrival order

    @property
    def reorder_fraction(self) -> float:
        """Share of requests the scheduler moved."""
        if not len(self.reordered):
            return 0.0
        return self.displaced / len(self.reordered)


class OpenPageScheduler:
    """Greedy row-hit-first reordering within a bounded window.

    The scheduler sees the next ``window`` outstanding requests.  Each
    step it issues, per the FR-FCFS policy, the *oldest request that hits
    an open row*; if none hits, the oldest request overall (which opens a
    new row).  Row state is tracked per bank exactly as the timing engine
    does, so the produced order is what a real open-page controller would
    issue; the reordered trace is then priced by the normal engine.
    """

    def __init__(
        self,
        memory: Memory3D,
        window: int = 32,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window <= 0:
            raise SimulationError(f"window must be positive, got {window}")
        self.memory = memory
        self.window = window
        #: Optional registry; when set, :meth:`reorder` records the
        #: queue-depth distribution and issue/displacement counters under
        #: the ``scheduler.`` prefix.
        self.metrics = metrics

    # ---------------------------------------------------------------- reorder
    def reorder(self, trace: TraceArray) -> tuple[TraceArray, int]:
        """Produce the issue order; returns (reordered trace, displaced)."""
        n = len(trace)
        if n == 0:
            return trace, 0
        mapping = self.memory.mapping
        vaults, banks, rows, _ = mapping.decode_array(trace.addresses)
        gbank = (vaults * self.memory.config.banks_per_vault + banks).tolist()
        rows_list = rows.tolist()

        open_row: dict[int, int] = {}
        window: deque[int] = deque()
        order: list[int] = []
        next_index = 0
        displaced = 0
        depth_hist = None
        hit_issues = 0
        if self.metrics is not None:
            depth_hist = self.metrics.histogram(
                "scheduler.window_depth",
                bounds=_DEPTH_BOUNDS,
                help="outstanding requests visible at each issue decision",
            )

        while len(order) < n:
            while next_index < n and len(window) < self.window:
                window.append(next_index)
                next_index += 1
            if depth_hist is not None:
                depth_hist.observe(len(window))
            chosen_pos = None
            for pos, idx in enumerate(window):
                if open_row.get(gbank[idx]) == rows_list[idx]:
                    chosen_pos = pos
                    hit_issues += 1
                    break
            if chosen_pos is None:
                chosen_pos = 0
            if chosen_pos != 0:
                displaced += 1
            idx = window[chosen_pos]
            del window[chosen_pos]
            open_row[gbank[idx]] = rows_list[idx]
            order.append(idx)

        if self.metrics is not None:
            self.metrics.counter(
                "scheduler.issued", help="requests issued by the scheduler"
            ).inc(n)
            self.metrics.counter(
                "scheduler.displaced", help="requests issued out of arrival order"
            ).inc(displaced)
            self.metrics.counter(
                "scheduler.row_hit_issues",
                help="issue decisions that found an open-row hit in the window",
            ).inc(hit_issues)

        index = np.asarray(order, dtype=np.int64)
        reordered = TraceArray(trace.addresses[index], trace.is_write[index])
        return reordered, displaced

    # --------------------------------------------------------------- simulate
    def simulate(
        self,
        trace: TraceArray,
        discipline: str = "in_order",
        sample: int | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> ScheduledResult:
        """Reorder then price the trace with the normal timing engine.

        ``fault_plan`` degrades the pricing run exactly as in
        :meth:`Memory3D.simulate` -- the reordering itself is unaffected
        (the controller does not know which vaults will misbehave).
        """
        run = trace if sample is None else trace.head(min(sample, len(trace)))
        reordered, displaced = self.reorder(run)
        stats = self.memory.simulate(reordered, discipline, fault_plan=fault_plan)
        if sample is not None and len(trace) > len(run) and len(run):
            stats = stats.scaled(len(trace) / len(run))
        return ScheduledResult(
            stats=stats, reordered=reordered, window=self.window,
            displaced=displaced,
        )
