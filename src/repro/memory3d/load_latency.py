"""Loaded-latency analysis: the latency-vs-offered-load curve.

Closed-loop simulation answers "how fast can this pattern go"; systems
also need "how long does a request wait at a given traffic level".  This
module injects a pattern's requests open loop at a chosen fraction of
peak bandwidth and measures queueing latency, producing the classic
hockey-stick curve: flat near-idle latency until the pattern's sustainable
bandwidth, then unbounded growth.  The knee's position *is* the pattern's
achievable bandwidth -- a third, independent way to see the baseline
column walk saturating at ~1 % of peak while DDL traffic rides to ~100 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.memory3d.memory import Memory3D
from repro.trace.request import TraceArray
from repro.units import ELEMENT_BYTES


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load measurement."""

    offered_fraction: float
    offered_bytes_per_s: float
    achieved_bytes_per_s: float
    mean_latency_ns: float
    max_latency_ns: float

    @property
    def saturated(self) -> bool:
        """True when the memory cannot keep up with the offered rate."""
        return self.achieved_bytes_per_s < 0.95 * self.offered_bytes_per_s


def with_offered_load(
    trace: TraceArray, fraction: float, peak_bytes_per_s: float
) -> TraceArray:
    """Attach uniform arrivals at ``fraction`` of peak bandwidth."""
    if not (0.0 < fraction):
        raise SimulationError(f"fraction must be positive, got {fraction}")
    if peak_bytes_per_s <= 0:
        raise SimulationError("peak bandwidth must be positive")
    inter_arrival_ns = ELEMENT_BYTES / (fraction * peak_bytes_per_s) * 1e9
    arrivals = np.arange(len(trace), dtype=np.float64) * inter_arrival_ns
    return trace.with_arrivals(arrivals)


def latency_load_curve(
    memory: Memory3D,
    pattern: TraceArray,
    fractions: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
    discipline: str = "per_vault",
    sample: int | None = 32_768,
) -> list[LoadPoint]:
    """Sweep offered load over a pattern and measure queueing latency.

    The trace is replayed with uniform arrivals at each offered fraction
    of the device peak; ``mean_request_latency_ns`` comes straight from
    the timing engines.
    """
    peak = memory.config.peak_bandwidth
    run = pattern if sample is None else pattern.head(min(sample, len(pattern)))
    points: list[LoadPoint] = []
    for fraction in fractions:
        loaded = with_offered_load(run, fraction, peak)
        stats = memory.simulate(loaded, discipline)
        points.append(LoadPoint(
            offered_fraction=fraction,
            offered_bytes_per_s=fraction * peak,
            achieved_bytes_per_s=stats.bandwidth_bytes_per_s,
            mean_latency_ns=stats.mean_request_latency_ns,
            max_latency_ns=stats.max_request_latency_ns,
        ))
    return points


def knee_fraction(points: list[LoadPoint]) -> float:
    """Offered fraction at which the pattern saturates (first saturated
    point, or 1.0 if it never does)."""
    for point in points:
        if point.saturated:
            return point.offered_fraction
    return 1.0
