"""Vectorized batch timing engine.

This module prices a whole trace with numpy array scans and closed-form
run arithmetic instead of the per-request Python loop in
:mod:`repro.memory3d.memory`.  It is selected with ``engine="vector"``
on :meth:`~repro.memory3d.memory.Memory3D.simulate` and is the default
engine for sweep workers; CI's ``engine-equivalence`` job asserts it
stat-for-stat *equal* (``==``, not approximately equal) to the exact
engine on the full corpus.

How the scan form works
-----------------------

Let ``x_i`` be the completion time of request *i*,
``add_i = t_in_row + jitter_i + correction_i`` its service tail, and
``a_i = x_i - add_i`` its beat (hit) or activation (miss) time.  In the
exact engine every ``a_i`` is the maximum of a handful of lower bounds,
each tying a request to its *predecessor along one chain*:

* **Chain A (discipline)** -- ``a_i >= a_pred + add_pred`` where ``pred``
  is the previous request globally (``in_order``) or on the same vault
  (``per_vault``).
* **Chain B (row buffer)** -- a row miss activates at least
  ``t_diff_row`` after the previous activation of the same bank.
* **Chain C (vault activation gate)** -- consecutive activations on the
  same vault are spaced by ``t_diff_bank`` (same layer) or
  ``t_in_vault`` (different layer); when they hit the same bank, chain B
  already enforces the stronger ``t_diff_row``, so the link is dropped.

Each chain constraint ``a_i >= a_pred + step_i`` becomes a *running
maximum* after subtracting the chain's prefix sum of steps, and a
running maximum over many independent chains is one
``np.maximum.accumulate`` after offsetting each chain into its own
disjoint value band (chain counts are bounded by the device geometry --
vaults and banks -- never by the trace length).  The engine seeds ``a``
with the arrival lower bound and sweeps chains A, B, C until a whole
pass changes nothing: because every relaxation only applies true
constraints of the exact system, the least fixpoint it converges to *is*
the exact engine's solution, bit for bit (both engines share the
integer-picosecond timebase of :mod:`repro.memory3d.timebase`, where
``max``/``add`` are associative).

Two refinements keep the pass count small:

* **Dominance pruning.**  A chain-B/C link whose endpoints are ``d``
  requests apart along their chain-A path is implied by chain A whenever
  ``d * min(add) >= step`` -- composing A's per-request spacing already
  yields a bound at least as strong.  Pruned links break their chain, so
  scattered access patterns (where bank revisits are far apart) collapse
  to chain A alone.
* **Blocking.**  The trace is priced in cache-resident blocks; the exact
  per-bank / per-vault state (open row, earliest next activation, last
  activation, ready times) is carried across block boundaries and enters
  the next block as constant lower bounds on each chain's first members.
  The constraint set is unchanged -- blocking only bounds how far a
  relaxation pass must propagate.

Closed-form run pricing
-----------------------

A :class:`~repro.trace.compile.CompiledTrace` run whose stride keeps
every request on *one* bank (stride divisible by
``row_bytes * vaults * banks_per_vault``) has a trivially serial
interior: each request's beat is ``max(add, t_diff_row)`` after its
predecessor (row-stepping runs miss every time) or exactly ``add``
after it (stride-0 runs hit every time), so the whole run is an
arithmetic series priced with O(1) scalar work.  Only the run's first
two requests see carried device state.  The engine walks a compiled
trace run by run, pricing such uniform-bank runs in closed form and
batching everything else through the array scan above, with the same
carried state threaded through both paths -- so the result is still
bit-identical to the exact engine.  Raw :class:`TraceArray` inputs are
auto-compiled when they compress well (see :data:`AUTO_COMPILE_MIN`).

TSV return-link contention never constrains either discipline (the
link's previous completion is always <= the stream/vault ready time), so
the scan form omits it.

Support envelope
----------------

Refresh windows, storm/throttle fault windows and per-request event
recording are inherently serial (each request's stall depends on where
inside a wall-clock window its beat lands), so those configurations fall
back to the exact engine -- see :func:`unsupported_reason`.  Vault
remapping, latency jitter, arrival times and bit-error correction are
handled here, vectorized.

Per-request Python loops are banned in this module by lint rule DET004
(see :mod:`repro.analysis.rules.determinism`): every ``for`` must
iterate over a ``range()`` whose extent is the block count, the run
count, the pass budget or device geometry, never the trace itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import AddressError
from repro.memory3d.stats import AccessStats
from repro.memory3d.timebase import (
    mean_latency_ns,
    ns_array_to_ps,
    ns_to_ps,
    ps_array_to_ns,
    ps_to_ns,
)
from repro.units import ELEMENT_BYTES

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.faults.plan import FaultState
    from repro.memory3d.config import Memory3DConfig
    from repro.memory3d.memory import Memory3D
    from repro.obs.events import Recorder
    from repro.trace.compile import CompiledTrace
    from repro.trace.request import TraceArray

#: Requests per pricing block.  Big enough to amortize per-block numpy
#: setup, small enough that the working set stays cache-resident and the
#: in-block critical path hops between chain families only a few times.
BLOCK = 1 << 18

#: Upper bound on relaxation sweeps within one block before the engine
#: gives up and the caller falls back to the exact loop.  Real traces
#: settle in a handful of sweeps; the cap only exists so an adversarial
#: interleaving degrades to the exact engine instead of spinning.
MAX_PASSES = 64

#: Raw traces at least this long are auto-compiled to run descriptors
#: (and priced per run when that compresses by :data:`AUTO_COMPILE_RATIO`
#: or better).  Short traces skip the probe -- the array scan is cheap
#: enough there.
AUTO_COMPILE_MIN = 1 << 14

#: Minimum requests-per-run, on average, for auto-compilation to pay:
#: below this the per-run Python arithmetic would rival the array scan.
AUTO_COMPILE_RATIO = 64

#: Error-class codes, mirroring ``repro.faults.plan`` (not imported at
#: runtime to keep the faults -> memory3d dependency one-directional).
_ERR_CORRECTED = 1
_ERR_UNCORRECTABLE = 2

#: Integer stand-in for "no activation yet", matching the exact engine.
_NO_ACT = -(1 << 62)


class VectorConvergenceError(RuntimeError):
    """The chain relaxation did not reach a fixpoint within budget.

    Raised (rarely) instead of returning a wrong answer;
    :class:`~repro.memory3d.memory.Memory3D` catches it and re-runs the
    trace on the exact engine.
    """


def unsupported_reason(
    config: Memory3DConfig,
    recorder: Recorder,
    faults: FaultState | None,
) -> str | None:
    """Why this configuration needs the exact engine (``None`` = it doesn't).

    The vector engine handles every timing rule that can be phrased as a
    fixed minimum spacing along a chain.  Window-based features cannot:
    a refresh or storm stall depends on *where in the window* the beat
    lands, which depends on every earlier stall.  Event recording needs
    the per-request loop because events carry per-request context.
    """
    if config.refresh is not None:
        return "refresh windows require serial phase arithmetic"
    if recorder.enabled:
        return "an enabled event recorder requires per-request event emission"
    if faults is not None:
        if faults.storms:
            return "refresh-storm windows require serial phase arithmetic"
        if faults.throttle is not None:
            return "thermal-throttle windows require serial busy accounting"
    return None


def _changes(values: np.ndarray) -> np.ndarray:
    """Boolean head marks: True at 0 and wherever ``values[k] != values[k-1]``."""
    head = np.ones(len(values), dtype=bool)
    head[1:] = values[1:] != values[:-1]
    return head


def _relax(
    a: np.ndarray,
    order: np.ndarray | None,
    c: np.ndarray,
    seg: np.ndarray | None,
) -> bool:
    """One relaxation sweep of ``a`` along a family of disjoint chains.

    ``order`` lists request indices chain by chain (``None`` = the whole
    block in program order, one chain); ``c`` is the prefix sum of the
    chain steps; ``seg`` numbers the chains (``None`` = single chain).
    Enforces, in place,

        a[order[k]] >= a[order[k-1]] + (c[k] - c[k-1])    (within a chain)

    by turning the constraint into a running maximum of ``a - c``, with
    each chain lifted into its own disjoint value band so one
    ``np.maximum.accumulate`` covers all of them.  Returns ``True`` if
    any value was raised.
    """
    cur = a if order is None else a[order]
    y = cur - c
    if seg is not None:
        span = int(y.max()) - int(y.min()) + 1
        # Chain counts are device geometry (<= banks), so the band trick
        # cannot overflow int64 in practice; degrade safely regardless.
        if span * (int(seg[-1]) + 1) >= (1 << 62):
            raise VectorConvergenceError("chain band offset would overflow int64")
        band = seg * span
        y += band
        np.maximum.accumulate(y, out=y)
        y -= band
    else:
        np.maximum.accumulate(y, out=y)
    y += c
    if np.array_equal(y, cur):
        return False
    if order is None:
        a[:] = y
    else:
        a[order] = y
    return True


def _seg_ids(head: np.ndarray) -> np.ndarray | None:
    """Chain ids from head marks (``None`` when there is a single chain)."""
    seg = np.cumsum(head, dtype=np.int64) - 1
    return seg if int(seg[-1]) > 0 else None


class _Engine:
    """Carried device state plus aggregates, shared by both pricing paths.

    The attributes mirror the exact engine's per-bank / per-vault
    variables one for one; :meth:`price_arrays` advances them with the
    blocked chain relaxation and :meth:`price_run` with closed-form run
    arithmetic.  Either way the state after a prefix of the trace is
    identical, which is what lets a compiled trace interleave the two.
    """

    def __init__(
        self, memory: Memory3D, discipline: str, n: int, record: bool
    ) -> None:
        cfg = memory.config
        timing = cfg.timing
        self.t_in_row = ns_to_ps(timing.t_in_row)
        self.t_in_vault = ns_to_ps(timing.t_in_vault)
        self.t_diff_bank = ns_to_ps(timing.t_diff_bank)
        self.t_diff_row = ns_to_ps(timing.t_diff_row)
        self.n_layers = cfg.layers
        self.n_vaults = cfg.vaults
        self.n_banks = cfg.total_banks
        self.banks_per_vault = cfg.banks_per_vault
        self.in_order = discipline == "in_order"

        # Carried cross-block state -- exactly the exact engine's arrays.
        self.open_row = np.full(self.n_banks, -1, dtype=np.int64)
        self.bank_next_act = np.zeros(self.n_banks, dtype=np.int64)
        self.last_act_a = np.full(self.n_vaults, _NO_ACT, dtype=np.int64)
        self.last_act_bank = np.full(self.n_vaults, -1, dtype=np.int64)
        self.vault_ready = np.zeros(self.n_vaults, dtype=np.int64)
        self.stream_ready = 0

        self.busy_ps = np.zeros(self.n_vaults, dtype=np.int64)
        self.x_out = np.empty(n, dtype=np.int64) if record else None
        self.activations = 0
        self.first_completion = 0
        self.last_completion = 0
        self.latency_sum = 0
        self.latency_max = 0

    # ------------------------------------------------------------ array path
    def price_arrays(
        self,
        va: np.ndarray,
        ba: np.ndarray,
        rows: np.ndarray,
        gbank: np.ndarray,
        add: np.ndarray | None,
        min_add: int,
        arrivals: np.ndarray | None,
        base: int,
    ) -> None:
        """Price one contiguous trace segment with the blocked chain scan.

        ``add is None`` means the constant service tail ``t_in_row``
        (the fault-free case); ``base`` is the segment's global request
        index, used for the recorded completions and the first response.
        """
        t_in_row = self.t_in_row
        t_in_vault = self.t_in_vault
        t_diff_bank = self.t_diff_bank
        t_diff_row = self.t_diff_row
        n_layers = self.n_layers
        in_order = self.in_order
        open_row = self.open_row
        bank_next_act = self.bank_next_act
        last_act_a = self.last_act_a
        last_act_bank = self.last_act_bank
        vault_ready = self.vault_ready

        n = len(va)
        block_arange = np.arange(min(n, BLOCK), dtype=np.int64)
        n_blocks = (n + BLOCK - 1) // BLOCK
        for blk in range(n_blocks):
            lo = blk * BLOCK
            hi = min(lo + BLOCK, n)
            m = hi - lo
            va_b = va[lo:hi]
            ba_b = ba[lo:hi]
            gb_b = gbank[lo:hi]
            rows_b = rows[lo:hi]
            add_b = add[lo:hi] if add is not None else None
            pos_b = block_arange[:m]

            # --- row hit/miss classification (timing-independent) ---------
            # Request k hits iff the previous access to its bank touched
            # the same row; "previous" resolves within the block via a
            # stable group-by-bank sort and across blocks via the carried
            # open rows.
            og = np.argsort(gb_b, kind="stable")
            gs = gb_b[og]
            rs = rows_b[og]
            head_g = _changes(gs)
            hit_sorted = np.zeros(m, dtype=bool)
            hit_sorted[1:] = ~head_g[1:] & (rs[1:] == rs[:-1])
            g_firsts = np.flatnonzero(head_g)
            hit_sorted[g_firsts] = open_row[gs[g_firsts]] == rs[g_firsts]
            g_ends = np.append(g_firsts[1:] - 1, m - 1)
            open_row[gs[g_ends]] = rs[g_ends]
            block_hits = int(hit_sorted.sum())
            self.activations += m - block_hits

            # --- chain construction ---------------------------------------
            # og restricted to misses keeps both the bank grouping and the
            # program order within each group: chain B needs no second sort.
            miss_sorted = np.flatnonzero(~hit_sorted)
            ob = og[miss_sorted]
            gb_ob = gs[miss_sorted]
            head_b0 = _changes(gb_ob) if len(ob) else np.zeros(0, dtype=bool)

            if in_order:
                rank = pos_b
                ov = None
                # misses in vault order, program order within each vault --
                # ``ob`` is bank-major, so restore program order first or
                # the vault chains would link backwards and cycle with
                # chain A.
                mi = np.sort(ob)
                oc = mi[np.argsort(va_b[mi], kind="stable")] if len(ob) else ob
            else:
                ov = np.argsort(va_b, kind="stable")
                vs = va_b[ov]
                head_v = _changes(vs)
                v_starts = np.flatnonzero(head_v)
                seg_v = np.cumsum(head_v, dtype=np.int64) - 1
                rank_sorted = pos_b - v_starts[seg_v]
                rank = np.empty(m, dtype=np.int64)
                rank[ov] = rank_sorted
                # misses in vault order, program order within each vault:
                hit_flags = np.zeros(m, dtype=bool)
                hit_flags[og] = hit_sorted
                oc = ov[~hit_flags[ov]]
            va_oc = va_b[oc]
            head_c0 = _changes(va_oc) if len(oc) else np.zeros(0, dtype=bool)

            # Chain B: constant step, pruned where the chain-A path between
            # consecutive same-bank activations is already wider.
            head_b = head_b0.copy()
            if len(ob) > 1:
                dist_b = np.empty(len(ob), dtype=np.int64)
                dist_b[0] = 0
                dist_b[1:] = rank[ob[1:]] - rank[ob[:-1]]
                head_b |= dist_b * min_add >= t_diff_row
            has_b = len(ob) > 1 and bool((~head_b).any())

            # Chain C: layer-dependent step; same-bank links are chain B's,
            # and chain-A-dominated links are pruned the same way.
            head_c = head_c0.copy()
            if len(oc) > 1:
                ba_oc = ba_b[oc]
                step_c = np.where(
                    (ba_oc % n_layers)[1:] == (ba_oc % n_layers)[:-1],
                    t_diff_bank,
                    t_in_vault,
                )
                step_c = np.concatenate(([0], step_c))
                head_c[1:] |= ba_oc[1:] == ba_oc[:-1]
                dist_c = np.empty(len(oc), dtype=np.int64)
                dist_c[0] = 0
                dist_c[1:] = rank[oc[1:]] - rank[oc[:-1]]
                head_c |= dist_c * min_add >= step_c
            has_c = len(oc) > 1 and bool((~head_c).any())

            # --- seed the beat times with every constant lower bound ------
            a = (
                arrivals[lo:hi].copy()
                if arrivals is not None
                else np.zeros(m, dtype=np.int64)
            )
            if in_order:
                if a[0] < self.stream_ready:
                    a[0] = self.stream_ready
                if add_b is None:
                    c_a = pos_b * t_in_row
                else:
                    c_a = np.cumsum(add_b, dtype=np.int64) - add_b
                order_a = None
                seg_a = None
            else:
                firsts = ov[v_starts]
                a[firsts] = np.maximum(a[firsts], vault_ready[vs[v_starts]])
                if add_b is None:
                    c_a = rank_sorted * t_in_row
                else:
                    steps = add_b[ov]
                    c_a = np.cumsum(steps, dtype=np.int64) - steps
                order_a = ov
                seg_a = _seg_ids(head_v)
            if len(ob):
                b_firsts = ob[np.flatnonzero(head_b0)]
                a[b_firsts] = np.maximum(a[b_firsts], bank_next_act[gb_b[b_firsts]])
            if len(oc):
                c_firsts = oc[np.flatnonzero(head_c0)]
                v_first = va_b[c_firsts]
                prev_bank = last_act_bank[v_first]
                gate = np.where(
                    (prev_bank % n_layers) == (ba_b[c_firsts] % n_layers),
                    t_diff_bank,
                    t_in_vault,
                )
                bound = last_act_a[v_first] + gate
                apply = (prev_bank >= 0) & (prev_bank != ba_b[c_firsts])
                a[c_firsts] = np.maximum(
                    a[c_firsts], np.where(apply, bound, _NO_ACT)
                )

            # --- relax to the least fixpoint ------------------------------
            if has_b:
                c_b = (pos_b[: len(ob)]) * t_diff_row
                seg_b = _seg_ids(head_b)
            if has_c:
                c_c = np.cumsum(np.where(head_c, 0, step_c), dtype=np.int64)
                seg_c = _seg_ids(head_c)
            for _ in range(MAX_PASSES):
                changed = _relax(a, order_a, c_a, seg_a)
                if has_b:
                    changed |= _relax(a, ob, c_b, seg_b)
                if has_c:
                    changed |= _relax(a, oc, c_c, seg_c)
                if not changed:
                    break
            else:
                raise VectorConvergenceError(
                    f"no fixpoint after {MAX_PASSES} relaxation passes"
                    f" (block {blk + 1}/{n_blocks})"
                )

            # --- fold the block into the aggregates, carry the state ------
            x = a + (add_b if add_b is not None else t_in_row)
            if self.x_out is not None:
                self.x_out[base + lo : base + hi] = x
            if base + lo == 0:
                self.first_completion = int(x[0])
            self.last_completion = max(self.last_completion, int(x.max()))
            np.maximum.at(self.busy_ps, va_b, x)
            if arrivals is not None:
                lat = x - arrivals[lo:hi]
                self.latency_sum += int(lat.sum())
                self.latency_max = max(self.latency_max, int(lat.max()))
            if len(ob):
                b_ends = np.append(np.flatnonzero(head_b0)[1:] - 1, len(ob) - 1)
                bank_next_act[gb_ob[b_ends]] = a[ob[b_ends]] + t_diff_row
            if len(oc):
                c_ends = np.append(np.flatnonzero(head_c0)[1:] - 1, len(oc) - 1)
                last_act_a[va_oc[c_ends]] = a[oc[c_ends]]
                last_act_bank[va_oc[c_ends]] = ba_b[oc[c_ends]]
            if in_order:
                self.stream_ready = int(x[-1])
            else:
                v_ends = np.append(v_starts[1:] - 1, m - 1)
                vault_ready[vs[v_ends]] = x[ov[v_ends]]

    # ------------------------------------------------------- closed-form path
    def price_run(
        self, vault: int, bank: int, row0: int, row_step: int, count: int, base: int
    ) -> None:
        """Price one uniform-bank run as an arithmetic series, O(1) work.

        All ``count`` requests decode to (``vault``, ``bank``) with rows
        ``row0, row0+row_step, ...``.  With a nonzero row step every
        request past the first misses and follows its predecessor by
        ``max(add, t_diff_row)``; with a zero step every request past the
        first hits and follows by ``add`` alone.  Only the first two
        requests consult carried device state -- exactly the requests a
        fresh relaxation block would seed -- so the state handed to the
        next run is bit-identical to the array path's.
        """
        add = self.t_in_row
        miss_step = add if add > self.t_diff_row else self.t_diff_row
        gb = vault * self.banks_per_vault + bank

        ready = self.stream_ready if self.in_order else int(self.vault_ready[vault])
        hit0 = int(self.open_row[gb]) == row0
        a0 = ready
        acts = 0
        last_act = 0
        if not hit0:
            nxt = int(self.bank_next_act[gb])
            if a0 < nxt:
                a0 = nxt
            gated = self._vault_gate(vault, bank)
            if a0 < gated:
                a0 = gated
            acts = 1
            last_act = a0
        if count == 1:
            a1 = a_last = a0
        elif row_step == 0:
            # The remaining requests re-read the now-open row: pure hits.
            a1 = a0 + add
            a_last = a0 + (count - 1) * add
        else:
            # The remaining requests each open a fresh row on this bank.
            if hit0:
                a1 = a0 + add
                nxt = int(self.bank_next_act[gb])
                if a1 < nxt:
                    a1 = nxt
                gated = self._vault_gate(vault, bank)
                if a1 < gated:
                    a1 = gated
            else:
                a1 = a0 + miss_step
            a_last = a1 + (count - 2) * miss_step
            acts += count - 1
            last_act = a_last
        x0 = a0 + add
        x_last = a_last + add

        if self.x_out is not None:
            seg = self.x_out[base : base + count]
            seg[0] = x0
            if count > 1:
                step = add if row_step == 0 else miss_step
                seg[1:] = (a1 + add) + step * np.arange(count - 1, dtype=np.int64)
        if base == 0:
            self.first_completion = x0
        if x_last > self.last_completion:
            self.last_completion = x_last
        if x_last > int(self.busy_ps[vault]):
            self.busy_ps[vault] = x_last
        self.activations += acts

        self.open_row[gb] = row0 + row_step * (count - 1)
        if acts:
            self.bank_next_act[gb] = last_act + self.t_diff_row
            self.last_act_a[vault] = last_act
            self.last_act_bank[vault] = bank
        if self.in_order:
            self.stream_ready = x_last
        else:
            self.vault_ready[vault] = x_last

    def _vault_gate(self, vault: int, bank: int) -> int:
        """Chain-C lower bound for an activation of ``bank`` on ``vault``.

        Same-bank reactivations are governed by the strictly wider
        ``bank_next_act`` bound (chain B), so they gate nothing here --
        mirroring the dropped same-bank links of the array path.
        """
        prev_bank = int(self.last_act_bank[vault])
        if prev_bank < 0 or prev_bank == bank:
            return _NO_ACT
        gate = (
            self.t_diff_bank
            if prev_bank % self.n_layers == bank % self.n_layers
            else self.t_in_vault
        )
        return int(self.last_act_a[vault]) + gate

    # -------------------------------------------------------------- finalize
    def finish(
        self, n: int, had_arrivals: bool, record: bool
    ) -> tuple[AccessStats, np.ndarray | None]:
        """Convert the integer-ps aggregates into the public ns stats."""
        busy_list = self.busy_ps.tolist()
        busy = {
            vid: ps_to_ns(busy_list[vid])
            for vid in range(self.n_vaults)
            if busy_list[vid] > 0
        }
        stats = AccessStats(
            requests=n,
            bytes_transferred=n * ELEMENT_BYTES,
            elapsed_ns=ps_to_ns(self.last_completion),
            row_activations=self.activations,
            row_hits=n - self.activations,
            per_vault_busy_ns=busy,
            first_response_ns=ps_to_ns(self.first_completion),
            mean_request_latency_ns=(
                mean_latency_ns(self.latency_sum, n) if had_arrivals else 0.0
            ),
            max_request_latency_ns=ps_to_ns(self.latency_max),
        )
        out = ps_array_to_ns(self.x_out) if record and self.x_out is not None else None
        return stats, out


def _decode(
    memory: Memory3D, addresses: np.ndarray, faults: FaultState | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized decode (with vault remapping) to int64 coordinate arrays."""
    vaults_arr, banks_arr, rows_arr, _ = memory.mapping.decode_array(addresses)
    if faults is not None and faults.remap is not None:
        remap_arr = np.asarray(faults.remap, dtype=vaults_arr.dtype)
        remapped = remap_arr[vaults_arr]
        faults.remapped_requests = int((remapped != vaults_arr).sum())
        vaults_arr = remapped
    vaults64 = vaults_arr.astype(np.int64)
    banks64 = banks_arr.astype(np.int64)
    rows64 = rows_arr.astype(np.int64)
    gbank = vaults64 * memory.config.banks_per_vault + banks64
    return vaults64, banks64, rows64, gbank


def _service_tail(
    n: int, t_in_row: int, faults: FaultState | None
) -> tuple[np.ndarray | None, int, int]:
    """Per-request service tail ``add`` (``None`` = constant ``t_in_row``).

    Returns ``(add, min_add, jitter_total)`` and books the fault
    counters (corrected / uncorrectable errors) as a side effect, the
    way the exact loop does while iterating.
    """
    if faults is None or (faults.jitter is None and faults.error_class is None):
        return None, t_in_row, 0
    add = np.full(n, t_in_row, dtype=np.int64)
    jitter_total = 0
    if faults.jitter is not None:
        jit = ns_array_to_ps(np.asarray(faults.jitter, dtype=np.float64))
        add += jit
        jitter_total = int(jit.sum())
    if faults.error_class is not None:
        err = np.asarray(faults.error_class, dtype=np.int64)
        corrected_mask = err == _ERR_CORRECTED
        add += np.where(corrected_mask, ns_to_ps(faults.correction_ns), 0)
        faults.corrected_errors = int(corrected_mask.sum())
        faults.uncorrectable_errors = int((err == _ERR_UNCORRECTABLE).sum())
    return add, int(add.min()), jitter_total


def simulate_vector(
    memory: Memory3D,
    trace: TraceArray | CompiledTrace,
    discipline: str,
    faults: FaultState | None = None,
    record: bool = False,
) -> tuple[AccessStats, np.ndarray | None]:
    """Price one trace with array scans; exact-engine-equal by construction.

    Mirrors the contract of ``Memory3D._simulate_fast`` /
    ``_simulate_faulted``: returns the stats plus (when ``record`` is
    set) the per-request completion times in ns.  The caller has already
    checked :func:`unsupported_reason`.  Accepts a raw
    :class:`~repro.trace.request.TraceArray` (auto-compiled when long
    and compressible) or a :class:`~repro.trace.compile.CompiledTrace`
    (priced run by run).
    """
    from repro.trace.compile import compile_trace
    from repro.trace.request import TraceArray

    n = len(trace)
    if n == 0:
        return AccessStats(), (np.zeros(0, dtype=np.float64) if record else None)

    compiled: Any = None
    if isinstance(trace, TraceArray):
        plain = faults is None and trace.arrival_ns is None
        if plain and n >= AUTO_COMPILE_MIN:
            probe = compile_trace(trace)
            if len(probe.runs) * AUTO_COMPILE_RATIO <= n:
                compiled = probe
    else:
        if faults is None and trace.arrival_ns is None:
            compiled = trace
        else:
            # Fault penalties and arrivals are request-granular, so run
            # arithmetic does not apply; the array scan still does.
            trace = trace.expand()

    engine = _Engine(memory, discipline, n, record)
    if compiled is not None:
        _price_compiled(memory, engine, compiled)
        if faults is not None:  # pragma: no cover - guarded above
            raise AssertionError("compiled pricing is fault-free by construction")
        return engine.finish(n, had_arrivals=False, record=record)

    va, ba, rows, gbank = _decode(memory, trace.addresses, faults)
    add, min_add, jitter_total = _service_tail(n, engine.t_in_row, faults)
    arrivals = (
        ns_array_to_ps(trace.arrival_ns) if trace.arrival_ns is not None else None
    )
    engine.price_arrays(va, ba, rows, gbank, add, min_add, arrivals, base=0)
    if faults is not None:
        faults.jitter_ns = ps_to_ns(jitter_total)
        faults.storm_stall_ns = 0.0
        faults.throttle_stall_ns = 0.0
    return engine.finish(n, had_arrivals=arrivals is not None, record=record)


def _price_compiled(
    memory: Memory3D, engine: _Engine, compiled: CompiledTrace
) -> None:
    """Walk a compiled trace, pricing runs in closed form where possible.

    Runs whose stride pins every request to one bank (or single-request
    runs) go through :meth:`_Engine.price_run`; maximal stretches of
    everything else are expanded and batched through the array scan.
    The carried state makes the interleaving exact.
    """
    from repro.trace.compile import expand_runs

    cfg = memory.config
    mapping = memory.mapping
    runs = compiled.runs
    starts = runs["start"]
    steps = runs["step"]
    counts = runs["count"]

    ends = starts + (counts - 1) * steps
    if min(int(starts.min()), int(ends.min())) < 0 or max(
        int(starts.max()), int(ends.max())
    ) >= cfg.capacity_bytes:
        # Mirrors AddressMapping.decode_array for the expanded trace.
        raise AddressError("address array contains out-of-capacity addresses")

    # A run stays on one bank iff its stride is a whole number of
    # row-sized chunks times the full vault x bank interleave.
    bank_stride = cfg.row_bytes << (
        mapping._vault_bits + mapping._bank_bits
    )
    closed = (counts == 1) | (steps % bank_stride == 0)

    # Maximal stretches of same-kind runs, walked in order.
    stretch_starts = np.flatnonzero(_changes(closed))
    stretch_ends = np.append(stretch_starts[1:], len(runs))
    bases = np.cumsum(counts, dtype=np.int64) - counts

    starts_l = starts.tolist()
    steps_l = steps.tolist()
    counts_l = counts.tolist()
    bases_l = bases.tolist()
    closed_l = closed.tolist()
    offset_bits = mapping._offset_bits
    vault_bits = mapping._vault_bits
    vault_mask = mapping._vault_mask
    bank_mask = mapping._bank_mask
    row_shift = vault_bits + mapping._bank_bits

    for s_idx in range(len(stretch_starts)):
        s = int(stretch_starts[s_idx])
        e = int(stretch_ends[s_idx])
        if closed_l[s]:
            for r in range(s, e):
                start = starts_l[r]
                count = counts_l[r]
                chunk = start >> offset_bits
                row_step = steps_l[r] // bank_stride if count > 1 else 0
                engine.price_run(
                    vault=chunk & vault_mask,
                    bank=(chunk >> vault_bits) & bank_mask,
                    row0=chunk >> row_shift,
                    row_step=row_step,
                    count=count,
                    base=bases_l[r],
                )
        else:
            addresses, _ = expand_runs(runs[s:e])
            va, ba, rows, gbank = _decode(memory, addresses, None)
            engine.price_arrays(
                va,
                ba,
                rows,
                gbank,
                add=None,
                min_add=engine.t_in_row,
                arrivals=None,
                base=bases_l[s],
            )
