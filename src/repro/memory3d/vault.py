"""Per-vault service timing.

Each vault has a dedicated memory controller and a private TSV bundle
(paper Section 3), so vaults impose **no timing constraints on each other**
("accessing data from different vaults causes zero latency...  vaults are
completely independent and can be active at the same time").

Within a vault three constraints order activations and data beats:

* the bank's own row cycle, ``t_diff_row`` (tracked per bank);
* consecutive activations to *different banks on the same layer* of the
  vault must be at least ``t_diff_bank`` apart;
* consecutive activations to banks on *different layers* pipeline over the
  TSVs at the smaller ``t_in_vault`` gap;
* data beats share the vault TSV bundle at one element per ``t_in_row``.

The paper's prose for ``t_diff_bank`` mentions "same or different vaults";
read literally that would serialize the whole device and contradict the
same section's statement that vaults are independent, so we scope all
activate-to-activate gaps to a single vault (see DESIGN.md).

Banks are numbered vault-locally with ``layer = bank % layers``
(layer-interleaved), so a stride walk that alternates between two
bank-index neighbours stays on one layer and pays ``t_diff_bank`` -- the
case the paper's baseline numbers imply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory3d.bank import NO_ROW, BankState
from repro.memory3d.config import Memory3DConfig


@dataclass
class ServiceResult:
    """Outcome of serving one request in a vault.

    Attributes:
        completion_ns: when the element's data beat finished.
        hit: True when the access was served from the open row.
        activate_ns: activation time (misses) or beat start (hits).
        tsv_wait_ns: time the request waited for the vault's shared TSV
            bundle to drain an earlier beat (0 when it went straight in).
        refresh_stall_ns: total deferral out of refresh windows (activate
            plus beat deferrals summed).
        refresh_stall_start_ns: when the first refresh deferral began
            (meaningful only when ``refresh_stall_ns > 0``).
    """

    completion_ns: float
    hit: bool
    activate_ns: float
    tsv_wait_ns: float = 0.0
    refresh_stall_ns: float = 0.0
    refresh_stall_start_ns: float = 0.0


class VaultTimingModel:
    """In-order service timing of one vault's request stream.

    This is the readable reference implementation; the array-based loop in
    :mod:`repro.memory3d.memory` implements identical rules and is
    cross-checked against this class in the test suite.
    """

    def __init__(self, config: Memory3DConfig, vault_id: int) -> None:
        self.config = config
        self.vault_id = vault_id
        self.banks = [BankState() for _ in range(config.banks_per_vault)]
        self.tsv_next_ns = 0.0
        self.last_activate_ns = float("-inf")
        self.last_activate_layer = -1
        self.last_activate_bank = -1

    def layer_of(self, bank: int) -> int:
        """Layer hosting a vault-local bank index (layer-interleaved)."""
        return bank % self.config.layers

    def defer_for_refresh(self, at_ns: float) -> float:
        """Push a command out of this vault's refresh windows.

        Vaults stagger their refreshes by ``t_refi / vaults`` so the
        device never blocks globally; within a window of ``t_rfc`` after
        each refresh start, the vault accepts no commands.
        """
        refresh = self.config.refresh
        if refresh is None:
            return at_ns
        period = refresh.t_refi_ns
        offset = self.vault_id * period / self.config.vaults
        phase = (at_ns - offset) % period
        if phase < refresh.t_rfc_ns:
            return at_ns + (refresh.t_rfc_ns - phase)
        return at_ns

    def service(self, bank: int, row: int, ready_ns: float) -> ServiceResult:
        """Serve one element access; returns completion time and hit flag.

        Args:
            bank: vault-local bank index.
            row: row index within the bank.
            ready_ns: earliest time the request may be issued (stream order).
        """
        timing = self.config.timing
        state = self.banks[bank]
        if state.is_hit(row):
            state.record_hit()
            tsv_wait = max(0.0, self.tsv_next_ns - ready_ns)
            beat_raw = max(self.tsv_next_ns, ready_ns)
            beat = self.defer_for_refresh(beat_raw)
            completion = beat + timing.t_in_row
            self.tsv_next_ns = completion
            return ServiceResult(
                completion,
                hit=True,
                activate_ns=beat,
                tsv_wait_ns=tsv_wait,
                refresh_stall_ns=beat - beat_raw,
                refresh_stall_start_ns=beat_raw,
            )

        act = state.earliest_activate(ready_ns)
        if self.last_activate_ns != float("-inf") and self.last_activate_bank != bank:
            layer = self.layer_of(bank)
            gap = (
                timing.t_diff_bank
                if layer == self.last_activate_layer
                else timing.t_in_vault
            )
            act = max(act, self.last_activate_ns + gap)
        act_raw = act
        act = self.defer_for_refresh(act)
        stall = act - act_raw
        stall_start = act_raw
        state.activate(row, act, timing)
        self.last_activate_ns = act
        self.last_activate_layer = self.layer_of(bank)
        self.last_activate_bank = bank
        tsv_wait = max(0.0, self.tsv_next_ns - act)
        beat_raw = max(act, self.tsv_next_ns)
        beat = self.defer_for_refresh(beat_raw)
        if beat > beat_raw and stall == 0.0:
            stall_start = beat_raw
        stall += beat - beat_raw
        completion = beat + timing.t_in_row
        self.tsv_next_ns = completion
        return ServiceResult(
            completion,
            hit=False,
            activate_ns=act,
            tsv_wait_ns=tsv_wait,
            refresh_stall_ns=stall,
            refresh_stall_start_ns=stall_start,
        )

    @property
    def activations(self) -> int:
        """Total row activations performed by this vault."""
        return sum(b.activations for b in self.banks)

    @property
    def hits(self) -> int:
        """Total open-row hits served by this vault."""
        return sum(b.hits for b in self.banks)

    def reset_rows(self) -> None:
        """Close all rows (keep counters); used between application phases."""
        for bank in self.banks:
            bank.open_row = NO_ROW
