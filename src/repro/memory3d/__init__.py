"""3D-stacked memory (HMC-like) model.

The device is organised as ``vaults x layers x banks-per-layer`` with a
row buffer per bank and one memory controller per vault (paper Fig. 1).
Vaults are fully independent (own TSV bundle); banks within a vault share
the vault's TSVs, so their activations must be pipelined.

Public surface:

* :class:`~repro.memory3d.config.Memory3DConfig` plus the
  :func:`~repro.memory3d.config.pact15_hmc_config` preset calibrated to the
  paper's numbers.
* :class:`~repro.memory3d.address.AddressMapping` -- physical address
  decoding to (vault, bank, row, column).
* :class:`~repro.memory3d.memory.Memory3D` -- the trace-driven timing
  simulator (exact and vectorized engines).
* :class:`~repro.memory3d.stats.AccessStats` -- measured results.
"""

from repro.memory3d.address import AddressMapping, DecodedAddress
from repro.memory3d.bank import BankState
from repro.memory3d.config import (
    Memory3DConfig,
    RefreshParameters,
    TimingParameters,
    pact15_hmc_config,
)
from repro.memory3d.memory import Memory3D
from repro.memory3d.stats import AccessStats
from repro.memory3d.vault import VaultTimingModel

__all__ = [
    "AccessStats",
    "AddressMapping",
    "BankState",
    "DecodedAddress",
    "Memory3D",
    "Memory3DConfig",
    "RefreshParameters",
    "TimingParameters",
    "VaultTimingModel",
    "pact15_hmc_config",
]
