"""Configuration of the 3D memory: geometry, TSV link and timing parameters.

The paper models the memory with four timing parameters (Section 3.1):

* ``t_diff_row``  -- minimum gap between activates to different rows of the
  *same bank* (the row-cycle time; the worst case).
* ``t_diff_bank`` -- minimum gap between activates to different rows in
  *different banks* (same or different vault).
* ``t_in_row``    -- gap between successive accesses to an *open row*
  (the streaming beat; one element per ``t_in_row``).
* ``t_in_vault``  -- gap between accesses to different rows in different
  banks of the *same vault* when the banks sit on different layers and the
  activations pipeline over the shared TSVs.

Accesses to different vaults have no mutual constraint (``t_diff_vault`` is
zero by construction -- vaults do not share TSVs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import ELEMENT_BYTES, ghz, is_power_of_two


@dataclass(frozen=True)
class TimingParameters:
    """The four activate/streaming timing parameters, in nanoseconds."""

    t_in_row: float = 1.6
    t_in_vault: float = 4.8
    t_diff_bank: float = 10.0
    t_diff_row: float = 20.0

    def __post_init__(self) -> None:
        values = {
            "t_in_row": self.t_in_row,
            "t_in_vault": self.t_in_vault,
            "t_diff_bank": self.t_diff_bank,
            "t_diff_row": self.t_diff_row,
        }
        for name, value in values.items():
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if not (
            self.t_in_row <= self.t_in_vault <= self.t_diff_bank <= self.t_diff_row
        ):
            raise ConfigError(
                "timing parameters must be ordered "
                "t_in_row <= t_in_vault <= t_diff_bank <= t_diff_row, got "
                f"{self.t_in_row} / {self.t_in_vault} / "
                f"{self.t_diff_bank} / {self.t_diff_row}"
            )


@dataclass(frozen=True)
class RefreshParameters:
    """DRAM refresh timing (optional; disabled by default).

    Every ``t_refi_ns`` each vault performs a refresh that blocks it for
    ``t_rfc_ns``; vaults stagger their refreshes so the device never
    stalls globally.  The steady-state bandwidth ceiling this imposes is
    ``1 - t_rfc / t_refi``.
    """

    t_refi_ns: float = 7800.0
    t_rfc_ns: float = 160.0

    def __post_init__(self) -> None:
        if self.t_refi_ns <= 0 or self.t_rfc_ns <= 0:
            raise ConfigError("refresh parameters must be positive")
        if self.t_rfc_ns >= self.t_refi_ns:
            raise ConfigError(
                f"t_rfc ({self.t_rfc_ns}) must be below t_refi ({self.t_refi_ns})"
            )

    @property
    def bandwidth_ceiling(self) -> float:
        """Fraction of peak bandwidth left after refresh overhead."""
        return 1.0 - self.t_rfc_ns / self.t_refi_ns


@dataclass(frozen=True)
class Memory3DConfig:
    """Geometry and link parameters of the 3D memory stack.

    Attributes:
        vaults: number of vaults (independent vertical slices).
        layers: number of stacked DRAM layers.
        banks_per_layer: banks per layer belonging to one vault; the banks of
            one vault across layers total ``layers * banks_per_layer``.
        row_bytes: row-buffer (page) size of one bank, in bytes.
        rows_per_bank: number of rows in each bank.
        tsvs_per_vault: width of the TSV bundle serving one vault (bits).
        tsv_freq_hz: TSV signalling rate in Hz (1 bit per TSV per cycle).
        timing: the four activate/streaming parameters.
    """

    vaults: int = 16
    layers: int = 4
    banks_per_layer: int = 2
    row_bytes: int = 256
    rows_per_bank: int = 1 << 16
    tsvs_per_vault: int = 32
    tsv_freq_hz: float = ghz(1.25)
    timing: TimingParameters = field(default_factory=TimingParameters)
    refresh: RefreshParameters | None = None

    def __post_init__(self) -> None:
        for name in ("vaults", "layers", "banks_per_layer", "row_bytes",
                     "rows_per_bank", "tsvs_per_vault"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"{name} must be a positive int, got {value!r}")
        for name in ("vaults", "banks_per_layer", "layers", "row_bytes"):
            if not is_power_of_two(getattr(self, name)):
                raise ConfigError(f"{name} must be a power of two for address "
                                  f"decoding, got {getattr(self, name)}")
        if self.row_bytes % ELEMENT_BYTES:
            raise ConfigError(
                f"row_bytes ({self.row_bytes}) must hold whole "
                f"{ELEMENT_BYTES}-byte elements"
            )
        if self.tsv_freq_hz <= 0:
            raise ConfigError(f"tsv_freq_hz must be positive, got {self.tsv_freq_hz}")

    # ------------------------------------------------------------------ sizes
    @property
    def banks_per_vault(self) -> int:
        """Total banks in one vault (across all layers)."""
        return self.layers * self.banks_per_layer

    @property
    def total_banks(self) -> int:
        """Total banks in the device."""
        return self.vaults * self.banks_per_vault

    @property
    def row_elements(self) -> int:
        """Row-buffer capacity in 8-byte elements (the paper's ``s``)."""
        return self.row_bytes // ELEMENT_BYTES

    @property
    def bank_bytes(self) -> int:
        """Capacity of one bank in bytes."""
        return self.row_bytes * self.rows_per_bank

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.bank_bytes * self.total_banks

    # -------------------------------------------------------------- bandwidth
    @property
    def vault_peak_bandwidth(self) -> float:
        """Peak bandwidth of one vault's TSV bundle, bytes/second."""
        return self.tsvs_per_vault * self.tsv_freq_hz / 8.0

    @property
    def peak_bandwidth(self) -> float:
        """Peak device bandwidth, bytes/second (paper: V * BW_vault)."""
        return self.vaults * self.vault_peak_bandwidth

    def describe(self) -> str:
        """Human-readable multi-line summary (used by the CLI)."""
        lines = [
            f"3D memory: {self.vaults} vaults x {self.layers} layers x "
            f"{self.banks_per_layer} banks/layer "
            f"({self.banks_per_vault} banks/vault, {self.total_banks} total)",
            f"  row buffer: {self.row_bytes} B ({self.row_elements} elements)",
            f"  capacity:   {self.capacity_bytes / (1 << 30):.2f} GiB",
            f"  TSVs/vault: {self.tsvs_per_vault} @ {self.tsv_freq_hz / 1e9:.2f} GHz"
            f" -> {self.vault_peak_bandwidth / 1e9:.2f} GB/s per vault",
            f"  peak BW:    {self.peak_bandwidth / 1e9:.2f} GB/s",
            "  timing (ns): "
            f"t_in_row={self.timing.t_in_row} t_in_vault={self.timing.t_in_vault} "
            f"t_diff_bank={self.timing.t_diff_bank} t_diff_row={self.timing.t_diff_row}",
        ]
        return "\n".join(lines)


def pact15_hmc_config() -> Memory3DConfig:
    """The HMC-like configuration calibrated to the paper's evaluation.

    16 vaults x 5 GB/s = 80 GB/s peak, so the paper's optimized column-phase
    throughputs (32 / 25.6 / 23.04 GB/s) land at 40 / 32 / 28.8 % utilization,
    and with ``t_diff_bank`` = 10 ns / ``t_diff_row`` = 20 ns the baseline
    column walk yields 0.8 GB/s (6.4 Gb/s) at N=2048 and 0.4 GB/s (3.2 Gb/s)
    at N >= 4096 -- Table 1's baseline rows.
    """
    return Memory3DConfig()


def hmc_gen2_config() -> Memory3DConfig:
    """A next-generation stack: 32 vaults, faster TSVs, 320 GB/s peak.

    Row-cycle times barely improve across DRAM generations, so the
    baseline's stride problem *worsens* relative to peak while the DDL
    keeps scaling -- the "new 3D memory technologies" scenario of the
    paper's conclusion.
    """
    return Memory3DConfig(
        vaults=32,
        layers=8,
        banks_per_layer=2,
        row_bytes=256,
        tsvs_per_vault=32,
        tsv_freq_hz=ghz(2.5),
        timing=TimingParameters(
            t_in_row=0.8, t_in_vault=4.0, t_diff_bank=9.0, t_diff_row=18.0
        ),
    )


def wideio_like_config() -> Memory3DConfig:
    """A mobile-class Wide-I/O-flavoured stack: few, wide, slow channels."""
    return Memory3DConfig(
        vaults=4,
        layers=4,
        banks_per_layer=4,
        row_bytes=2048,
        tsvs_per_vault=128,
        tsv_freq_hz=ghz(0.2),
        timing=TimingParameters(
            t_in_row=2.5, t_in_vault=8.0, t_diff_bank=12.0, t_diff_row=40.0
        ),
    )
