"""Integer-picosecond timebase shared by the timing engines.

Both engines (the exact per-request loop in
:mod:`repro.memory3d.memory` and the vectorized batch engine in
:mod:`repro.memory3d.vector`) do their internal arithmetic in *integer
picoseconds*.  Integer ``add``/``max`` are associative, so a serial
recurrence and a numpy scan over the same trace produce bit-identical
values -- which is what lets the equivalence gate assert the two engines
stat-for-stat *equal* (``==``, not ``approx``) and lets sweep documents
stay byte-identical whichever engine priced them.

Nanoseconds remain the public unit: configs, fault plans and
:class:`~repro.memory3d.stats.AccessStats` all speak ns.  Conversion
happens once per simulation at this boundary; ``1.6 ns`` becomes exactly
``1600 ps`` and ``1600 / 1000.0`` is exactly the double ``1.6`` again,
so round-tripping the paper's timing constants is lossless.
"""

from __future__ import annotations

import numpy as np

#: Picoseconds per nanosecond -- the fixed-point scale of the engines.
PS_PER_NS = 1000


def ns_to_ps(value_ns: float) -> int:
    """One ns quantity as integer picoseconds (nearest-ps rounding)."""
    return int(round(value_ns * PS_PER_NS))


def ns_array_to_ps(values_ns: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ns_to_ps` -- float64 ns to int64 ps."""
    return np.rint(np.asarray(values_ns, dtype=np.float64) * PS_PER_NS).astype(
        np.int64
    )


def ps_to_ns(value_ps: int) -> float:
    """Integer picoseconds back to float nanoseconds."""
    return value_ps / PS_PER_NS


def ps_array_to_ns(values_ps: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ps_to_ns` -- int64 ps to float64 ns."""
    return np.asarray(values_ps, dtype=np.float64) / PS_PER_NS


def mean_latency_ns(latency_sum_ps: int, n_requests: int) -> float:
    """The canonical mean-latency conversion both engines must share.

    Floating-point division is deterministic but not associative, so the
    two engines must evaluate the *same expression* on the same integer
    aggregate to report the same double.
    """
    if n_requests <= 0:
        return 0.0
    return (latency_sum_ps / n_requests) / PS_PER_NS
