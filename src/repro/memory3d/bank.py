"""Per-bank row-buffer state.

A bank holds one open row at a time.  An access to the open row is a *row
hit* and only pays the streaming beat; an access to any other row requires a
row activation, which is gated by the bank's activate-to-activate minimum
(``t_diff_row``) and by vault-level activation constraints tracked in
:class:`~repro.memory3d.vault.VaultTimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory3d.config import TimingParameters

#: Sentinel meaning "no row open / never activated".
NO_ROW = -1


@dataclass
class BankState:
    """Open-row tracking plus the bank-local activate constraint."""

    open_row: int = NO_ROW
    next_activate_ns: float = 0.0
    activations: int = 0
    hits: int = 0

    def is_hit(self, row: int) -> bool:
        """True if ``row`` is currently open in this bank."""
        return self.open_row == row

    def earliest_activate(self, ready_ns: float) -> float:
        """Earliest time a new activation may start, given request readiness."""
        return max(ready_ns, self.next_activate_ns)

    def activate(self, row: int, at_ns: float, timing: TimingParameters) -> None:
        """Open ``row`` at time ``at_ns`` and arm the t_diff_row constraint."""
        self.open_row = row
        self.next_activate_ns = at_ns + timing.t_diff_row
        self.activations += 1

    def record_hit(self) -> None:
        """Count an open-row access."""
        self.hits += 1

    def reset(self) -> None:
        """Forget the open row and timing state (e.g. between phases)."""
        self.open_row = NO_ROW
        self.next_activate_ns = 0.0


@dataclass
class BankCounters:
    """Aggregate per-bank counters for a finished simulation."""

    activations: dict[int, int] = field(default_factory=dict)
    hits: dict[int, int] = field(default_factory=dict)

    def total_activations(self) -> int:
        """Sum of activations across all banks."""
        return sum(self.activations.values())

    def total_hits(self) -> int:
        """Sum of open-row hits across all banks."""
        return sum(self.hits.values())
