"""Typed per-request event tracing for the memory timing engines.

The timing engines compute exactly *where* every nanosecond of a trace
goes -- which bank activated, which access hit an open row, how long a
request waited for the vault TSV bundle or sat behind a refresh -- and
the aggregate :class:`~repro.memory3d.stats.AccessStats` then throws
that structure away.  A :class:`Recorder` passed to
:class:`~repro.memory3d.memory.Memory3D` keeps it:

* :class:`NullRecorder` -- the default; ``enabled`` is False and the hot
  loop skips all event construction (one pointer check per request).
* :class:`EventTrace` -- columnar storage of every event, convertible to
  Chrome ``trace_event`` JSON (:mod:`repro.obs.export`), to a
  :class:`~repro.obs.metrics.MetricsRegistry`, or iterated as typed
  :class:`Event` objects.

Event kinds (:class:`EventKind`):

``ACTIVATE``
    A row-buffer miss opened ``row`` in ``(vault, bank)`` at ``ts_ns``;
    the bank is occupied for the row cycle (``dur_ns = t_diff_row``).
``ROW_HIT``
    An access was served from the open row; ``dur_ns`` is the data beat.
``TSV_CONTENTION``
    The request was ready but its vault's shared TSV bundle was still
    draining an earlier beat; ``dur_ns`` is the wait.
``REFRESH_STALL``
    The command was pushed out of a refresh window; ``dur_ns`` is the
    deferral (summed per request when both activate and beat defer).
``BIT_ERROR``
    A fault-injected transient bit flip was detected on the data beat
    (:class:`~repro.faults.BitErrorModel`); ``dur_ns`` is the ECC
    correction penalty (zero for detected-but-uncorrectable errors).

Kinds ``WORKER_START`` .. ``CACHE_HIT`` are *run-telemetry* events:
they describe the execution machinery (sweep workers, queueing,
retries, cache replay) rather than the simulated device, are recorded
through :mod:`repro.obs.telemetry` in host seconds, and never appear in
an engine :class:`EventTrace`.  They share this registry so the OBS001
lint rule covers every ``record``/``record_event`` call site in the
repository from one vocabulary:

``WORKER_START`` / ``WORKER_END``
    A sweep worker process picked up / finished one grid point.
``QUEUE_WAIT``
    Time a dispatched point spent waiting for a worker slot.
``RETRY``
    A point needed extra attempts under the resilient executor.
``CACHE_HIT``
    A point was replayed from the on-disk result cache.

Kinds ``REQUEST_START`` .. ``FLIGHT_DUMP`` are *request-tracing*
events recorded at the serving edge (:mod:`repro.obs.tracectx` /
:mod:`repro.obs.flight`), also in host seconds:

``REQUEST_START``
    A ``POST /plan`` request was admitted and a trace root created.
``COALESCE_LINK``
    A request attached to another request's in-flight computation; the
    trace carries a link to the shared computation's trace.
``BREAKER_TRANSITION``
    The serve circuit breaker changed state (closed/open/half-open).
``FLIGHT_DUMP``
    A flight-recorder bundle was written (quarantine, breaker-open,
    SIGTERM, or on demand).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from collections.abc import Iterator

from repro.obs.metrics import MetricsRegistry


class EventKind(IntEnum):
    """The event types emitted by the memory timing engines."""

    ACTIVATE = 0
    ROW_HIT = 1
    REFRESH_STALL = 2
    TSV_CONTENTION = 3
    BIT_ERROR = 4
    # Run-telemetry kinds (host time, recorded via repro.obs.telemetry).
    WORKER_START = 5
    WORKER_END = 6
    QUEUE_WAIT = 7
    RETRY = 8
    CACHE_HIT = 9
    # Request-tracing kinds (serve edge, recorded via repro.obs.tracectx).
    REQUEST_START = 10
    COALESCE_LINK = 11
    BREAKER_TRANSITION = 12
    FLIGHT_DUMP = 13


#: The engine-emitted kinds: events with device (vault/bank/row)
#: coordinates, recorded in simulated nanoseconds.
ENGINE_EVENT_KINDS = frozenset(
    {
        EventKind.ACTIVATE,
        EventKind.ROW_HIT,
        EventKind.REFRESH_STALL,
        EventKind.TSV_CONTENTION,
        EventKind.BIT_ERROR,
    }
)

#: The run-telemetry kinds: execution-machinery events recorded in host
#: seconds by :mod:`repro.obs.telemetry`.
TELEMETRY_EVENT_KINDS = frozenset(set(EventKind) - ENGINE_EVENT_KINDS)


#: The registered event vocabulary: name -> kind.  This mapping is the
#: single source of truth for event names; the engines' ``EV_*`` aliases
#: below are derived from it, and the OBS001 lint rule
#: (:mod:`repro.analysis.rules.obs`) imports it to verify that every
#: ``record`` call site uses a registered name.
EVENT_REGISTRY: dict[str, EventKind] = {kind.name: kind for kind in EventKind}


def registered_event_names() -> frozenset[str]:
    """The names every ``record`` call site must draw from."""
    return frozenset(EVENT_REGISTRY)


#: Module-level aliases so the hot loop avoids enum attribute lookups.
EV_ACTIVATE = int(EVENT_REGISTRY["ACTIVATE"])
EV_ROW_HIT = int(EVENT_REGISTRY["ROW_HIT"])
EV_REFRESH_STALL = int(EVENT_REGISTRY["REFRESH_STALL"])
EV_TSV_CONTENTION = int(EVENT_REGISTRY["TSV_CONTENTION"])
EV_BIT_ERROR = int(EVENT_REGISTRY["BIT_ERROR"])
EV_WORKER_START = int(EVENT_REGISTRY["WORKER_START"])
EV_WORKER_END = int(EVENT_REGISTRY["WORKER_END"])
EV_QUEUE_WAIT = int(EVENT_REGISTRY["QUEUE_WAIT"])
EV_RETRY = int(EVENT_REGISTRY["RETRY"])
EV_CACHE_HIT = int(EVENT_REGISTRY["CACHE_HIT"])
EV_REQUEST_START = int(EVENT_REGISTRY["REQUEST_START"])
EV_COALESCE_LINK = int(EVENT_REGISTRY["COALESCE_LINK"])
EV_BREAKER_TRANSITION = int(EVENT_REGISTRY["BREAKER_TRANSITION"])
EV_FLIGHT_DUMP = int(EVENT_REGISTRY["FLIGHT_DUMP"])


@dataclass(frozen=True)
class Event:
    """One timing event: what happened, where, and when.

    Attributes:
        kind: the :class:`EventKind`.
        vault: vault id the event occurred in.
        bank: vault-local bank index.
        row: row index within the bank.
        ts_ns: event start time (simulated nanoseconds).
        dur_ns: event duration (occupancy, beat or stall length).
    """

    kind: EventKind
    vault: int
    bank: int
    row: int
    ts_ns: float
    dur_ns: float

    @property
    def end_ns(self) -> float:
        """Event end time (``ts_ns + dur_ns``)."""
        return self.ts_ns + self.dur_ns


class Recorder:
    """Interface the timing engines record events through.

    ``enabled`` is checked once per simulation; when False the engines
    bypass event construction entirely, which is what keeps the
    default (uninstrumented) hot loop at seed speed.
    """

    #: Engines skip all recording when this is False.
    enabled: bool = False

    def record(
        self, kind: int, vault: int, bank: int, row: int, ts_ns: float, dur_ns: float
    ) -> None:
        """Record one event (no-op in the base class)."""


class NullRecorder(Recorder):
    """The recording-off fast path: drops everything, costs nothing."""

    enabled = False

    def record(
        self, kind: int, vault: int, bank: int, row: int, ts_ns: float, dur_ns: float
    ) -> None:
        """Discard the event."""


#: Shared no-op recorder instance used as the engines' default.
NULL_RECORDER = NullRecorder()


class EventTrace(Recorder):
    """Columnar recorder keeping every event of a simulation.

    Events are stored as parallel plain lists (append is one bytecode
    dispatch away from the hot loop); typed :class:`Event` views are
    materialized on demand.
    """

    enabled = True

    def __init__(self) -> None:
        self.kinds: list[int] = []
        self.vaults: list[int] = []
        self.banks: list[int] = []
        self.rows: list[int] = []
        self.ts_ns: list[float] = []
        self.dur_ns: list[float] = []

    # ------------------------------------------------------------- recording
    def record(
        self, kind: int, vault: int, bank: int, row: int, ts_ns: float, dur_ns: float
    ) -> None:
        """Append one event."""
        self.kinds.append(kind)
        self.vaults.append(vault)
        self.banks.append(bank)
        self.rows.append(row)
        self.ts_ns.append(ts_ns)
        self.dur_ns.append(dur_ns)

    def clear(self) -> None:
        """Drop all recorded events (reuse the recorder across runs)."""
        self.kinds.clear()
        self.vaults.clear()
        self.banks.clear()
        self.rows.clear()
        self.ts_ns.clear()
        self.dur_ns.clear()

    # ----------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self) -> Iterator[Event]:
        for kind, vault, bank, row, ts, dur in zip(
            self.kinds, self.vaults, self.banks, self.rows, self.ts_ns, self.dur_ns,
            strict=True,
        ):
            yield Event(EventKind(kind), vault, bank, row, ts, dur)

    def events(self, kind: EventKind | None = None) -> list[Event]:
        """All events, optionally filtered to one kind."""
        if kind is None:
            return list(self)
        want = int(kind)
        return [event for event in self if event.kind == want]

    def counts(self) -> dict[str, int]:
        """Event count per kind name (engine kinds present, zero-filled).

        Engine traces only ever carry :data:`ENGINE_EVENT_KINDS`; should
        a run-telemetry kind be recorded anyway it is still counted
        under its own name rather than dropped.
        """
        result = {
            kind.name: 0 for kind in sorted(ENGINE_EVENT_KINDS)
        }
        for kind in self.kinds:
            name = EventKind(kind).name
            result[name] = result.get(name, 0) + 1
        return result

    def count(self, kind: EventKind) -> int:
        """Event count for one kind."""
        want = int(kind)
        return sum(1 for k in self.kinds if k == want)

    @property
    def end_ns(self) -> float:
        """Latest event end time (0 when empty)."""
        return max(
            (ts + dur for ts, dur in zip(self.ts_ns, self.dur_ns, strict=True)),
            default=0.0,
        )

    # ------------------------------------------------------------ breakdowns
    def stall_ns(self, kind: EventKind) -> float:
        """Total stalled nanoseconds attributed to one stall kind."""
        want = int(kind)
        return sum(
            dur for k, dur in zip(self.kinds, self.dur_ns, strict=True) if k == want
        )

    def per_vault_counts(self, kind: EventKind) -> dict[int, int]:
        """Events of ``kind`` per vault."""
        want = int(kind)
        result: dict[int, int] = {}
        for k, vault in zip(self.kinds, self.vaults, strict=True):
            if k == want:
                result[vault] = result.get(vault, 0) + 1
        return result

    def per_vault_row_hit_rate(self) -> dict[int, float]:
        """Fraction of each vault's accesses served from an open row."""
        hits = self.per_vault_counts(EventKind.ROW_HIT)
        activations = self.per_vault_counts(EventKind.ACTIVATE)
        result: dict[int, float] = {}
        for vault in sorted(set(hits) | set(activations)):
            h = hits.get(vault, 0)
            total = h + activations.get(vault, 0)
            result[vault] = h / total if total else 0.0
        return result

    def per_vault_busy_ns(self) -> dict[int, float]:
        """Data-beat nanoseconds per vault (ACTIVATE + ROW_HIT beats)."""
        result: dict[int, float] = {}
        for kind, vault, dur in zip(self.kinds, self.vaults, self.dur_ns, strict=True):
            if kind == EV_ROW_HIT:
                result[vault] = result.get(vault, 0.0) + dur
        return result

    # --------------------------------------------------------------- metrics
    def to_metrics(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Fold the event stream into a :class:`MetricsRegistry`.

        Produces per-kind counters, stall-time counters, and fixed-bucket
        histograms of the row-cycle (ACTIVATE) timestamps' inter-arrival
        gaps per bank plus stall durations -- the distributions the paper's
        bandwidth argument is about.
        """
        registry = registry or MetricsRegistry()
        counts = self.counts()
        for name, value in counts.items():
            registry.counter(
                f"events.{name.lower()}", help=f"{name} events recorded"
            ).inc(value)
        registry.counter(
            "stall.refresh_ns", help="total refresh-stall nanoseconds"
        ).inc(self.stall_ns(EventKind.REFRESH_STALL))
        registry.counter(
            "stall.tsv_contention_ns", help="total TSV-contention nanoseconds"
        ).inc(self.stall_ns(EventKind.TSV_CONTENTION))
        total = counts["ACTIVATE"] + counts["ROW_HIT"]
        if total:
            registry.gauge(
                "memory.row_hit_rate", help="fraction of accesses hitting open rows"
            ).set(counts["ROW_HIT"] / total)
        stall_hist = registry.histogram(
            "stall.duration_ns",
            bounds=(1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0),
            help="stall durations (refresh + TSV contention)",
        )
        cycle_hist = registry.histogram(
            "memory.activate_gap_ns",
            bounds=(5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0),
            help="gap between consecutive row activations in one vault",
        )
        last_activate: dict[int, float] = {}
        for kind, vault, ts, dur in zip(
            self.kinds, self.vaults, self.ts_ns, self.dur_ns, strict=True
        ):
            if kind == EV_ACTIVATE:
                prev = last_activate.get(vault)
                if prev is not None:
                    cycle_hist.observe(ts - prev)
                last_activate[vault] = ts
            elif kind in (EV_REFRESH_STALL, EV_TSV_CONTENTION):
                stall_hist.observe(dur)
        return registry

    def __repr__(self) -> str:
        counts = self.counts()
        parts = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
        return f"EventTrace(n={len(self)}{', ' + parts if parts else ''})"
