"""Live sweep monitoring: an embedded ``/status`` + ``/metrics`` server.

PR 5 made sweeps observable *after the fact* (merged traces, OpenMetrics
dumps, HTML reports); this module makes them observable *while running*.
Two pieces:

* :class:`SweepStatus` -- thread-safe accounting the sweep runner
  updates as points complete: grid progress, per-worker state, retry
  and quarantine counts, cache hit rate, and a throughput-based ETA.
  It also accumulates the per-point metrics snapshots into a live
  :class:`~repro.obs.metrics.MetricsRegistry` so ``/metrics`` serves
  real mid-run numbers, not an end-of-run merge.
* :class:`SweepMonitor` -- a stdlib ``http.server`` thread in the
  parent process (``repro sweep --monitor PORT``; port 0 binds an
  ephemeral port) exposing:

  - ``GET /status`` -- one JSON document (:data:`STATUS_SCHEMA`):
    progress, throughput, ETA, per-worker state, failures, cache hits;
  - ``GET /metrics`` -- the OpenMetrics text exposition of the live
    registry plus progress gauges (scrapeable by any Prometheus agent,
    reusing :func:`repro.obs.openmetrics.render_openmetrics`);
  - ``GET /logs?n=N`` -- the newest N structured log records from the
    global ring buffer (:mod:`repro.obs.logging`), oldest first.

``python -m repro tail --url http://...`` polls ``/status`` and renders
the single-line live view (:func:`render_status_line`).

Monitoring is run *metadata*: the deterministic sweep document is
byte-identical with the monitor on or off (enforced by tests).  The
future ``repro serve`` service reuses this module for its ``/metrics``
endpoint and request tracing.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.obs.histogram import (
    POINT_DURATION_BOUNDS,
    observe_latency,
    summarize_latencies,
)
from repro.obs.logging import RingBufferSink, get_logger, global_ring
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import render_openmetrics

#: Schema tag stamped into every ``/status`` document (v2 added the
#: ``latency`` summary section).
STATUS_SCHEMA = "repro-status/v2"

#: Exact key set of a ``repro-status/v2`` document.  SCHEMA001 holds
#: every producer of the tag to this declaration (``repro tail`` and CI
#: scrapers key off it); new fields need a new tag version.
STATUS_KEYS = frozenset(
    {
        "schema",
        "run_id",
        "state",
        "total",
        "completed",
        "simulated",
        "cached",
        "resumed",
        "failed",
        "failure_reasons",
        "retries",
        "jobs",
        "progress",
        "cache_hit_rate",
        "elapsed_s",
        "throughput_pts_per_s",
        "eta_s",
        "workers",
        "latency",
    }
)

#: The retired v1 status contract, kept declared so SCHEMA001 still
#: recognizes recorded v1 documents (no shipped producer remains).
STATUS_V1_SCHEMA = "repro-status/v1"
STATUS_V1_KEYS = frozenset(
    {
        "schema",
        "run_id",
        "state",
        "total",
        "completed",
        "simulated",
        "cached",
        "resumed",
        "failed",
        "failure_reasons",
        "retries",
        "jobs",
        "progress",
        "cache_hit_rate",
        "elapsed_s",
        "throughput_pts_per_s",
        "eta_s",
        "workers",
    }
)

#: Content type served by ``/metrics`` (OpenMetrics text exposition).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Default record count for ``/logs`` when ``n`` is not given.
DEFAULT_LOG_TAIL = 100


class MonitorError(ReproError):
    """Invalid monitor configuration or use."""


# ---------------------------------------------------------------- sweep status
class SweepStatus:
    """Thread-safe live accounting of one sweep run.

    The runner calls the ``mark_*`` methods from its outcome loop; the
    monitor's HTTP threads call :meth:`snapshot` and
    :meth:`metrics_snapshot` concurrently.  All host-time reads live
    here (``repro.obs`` is the DET001-exempt zone) -- status is run
    metadata and never part of a deterministic result document.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.run_id: str | None = None
        self.state = "idle"
        self.total = 0
        self.simulated = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.resumed = 0
        self.jobs = 0
        self._started_perf: float | None = None
        self._finished_perf: float | None = None
        #: worker_id -> {"points": n, "last_point": i, "last_seen_s": t}
        self._workers: dict[int, dict[str, Any]] = {}
        #: canonical QuarantineReason value -> count of quarantined points
        self._failure_reasons: dict[str, int] = {}
        self._registry = MetricsRegistry()

    # ------------------------------------------------------------- transitions
    def start_run(
        self, total: int, run_id: str | None = None,
        jobs: int = 1, resumed: int = 0,
    ) -> None:
        """Begin a run: reset counters, record identity and grid size."""
        with self._lock:
            self.run_id = run_id
            self.state = "running"
            self.total = int(total)
            self.simulated = 0
            self.cached = 0
            self.failed = 0
            self.retries = 0
            self.resumed = int(resumed)
            self.jobs = int(jobs)
            self._started_perf = time.perf_counter()
            self._finished_perf = None
            self._workers = {}
            self._failure_reasons = {}
            self._registry = MetricsRegistry()

    def finish(self) -> None:
        """Mark the run complete (``/status`` reports ``"done"``)."""
        with self._lock:
            self.state = "done"
            self._finished_perf = time.perf_counter()

    # --------------------------------------------------------------- progress
    def mark_cached(self, index: int) -> None:
        """One point replayed from the result cache."""
        with self._lock:
            self.cached += 1

    def mark_ok(
        self,
        index: int,
        worker_id: int | None = None,
        metrics: dict[str, Any] | None = None,
        duration_s: float | None = None,
    ) -> None:
        """One point simulated successfully.

        ``metrics`` is the worker's registry snapshot; folding it here
        keeps ``/metrics`` live instead of end-of-run.  ``duration_s``
        (the winning attempt's wall time) feeds the
        ``sweep.point_duration_s`` latency histogram behind the
        ``latency`` section of ``/status``.
        """
        with self._lock:
            self.simulated += 1
            if metrics:
                self._registry.merge_snapshot(metrics)
            if duration_s is not None:
                observe_latency(
                    self._registry,
                    "sweep.point_duration_s",
                    float(duration_s),
                    POINT_DURATION_BOUNDS,
                    help="per-point simulation wall time",
                )
            if worker_id is not None:
                entry = self._workers.setdefault(
                    worker_id, {"points": 0, "last_point": None,
                                "last_seen_s": 0.0},
                )
                entry["points"] += 1
                entry["last_point"] = index
                entry["last_seen_s"] = time.time()

    def mark_failed(self, index: int, reason: str | None = None) -> None:
        """One point quarantined after exhausting its attempts.

        ``reason`` is the canonical
        :class:`~repro.sweep.resilience.QuarantineReason` value from the
        failure record; ``/status`` reports the per-reason breakdown.
        """
        with self._lock:
            self.failed += 1
            if reason:
                key = str(reason)
                self._failure_reasons[key] = (
                    self._failure_reasons.get(key, 0) + 1
                )

    def mark_retry(self, index: int, attempts: int = 1) -> None:
        """``attempts`` extra attempts were spent on one point."""
        with self._lock:
            self.retries += int(attempts)

    # ------------------------------------------------------------------ views
    def _completed(self) -> int:
        return self.simulated + self.cached + self.failed

    def snapshot(self) -> dict[str, Any]:
        """The ``/status`` JSON document (consistent point-in-time copy)."""
        with self._lock:
            completed = self._completed()
            now = time.perf_counter()
            if self._started_perf is None:
                elapsed = 0.0
            else:
                end = (
                    self._finished_perf
                    if self._finished_perf is not None
                    else now
                )
                elapsed = max(0.0, end - self._started_perf)
            throughput = completed / elapsed if elapsed > 0 else 0.0
            remaining = max(0, self.total - completed - self.resumed)
            eta_s = remaining / throughput if throughput > 0 else None
            attempted = self.simulated + self.cached
            return {
                "schema": STATUS_SCHEMA,
                "run_id": self.run_id,
                "state": self.state,
                "total": self.total,
                "completed": completed + self.resumed,
                "simulated": self.simulated,
                "cached": self.cached,
                "resumed": self.resumed,
                "failed": self.failed,
                "failure_reasons": dict(sorted(self._failure_reasons.items())),
                "retries": self.retries,
                "jobs": self.jobs,
                "progress": (
                    (completed + self.resumed) / self.total
                    if self.total
                    else 0.0
                ),
                "cache_hit_rate": (
                    self.cached / attempted if attempted else 0.0
                ),
                "elapsed_s": elapsed,
                "throughput_pts_per_s": throughput,
                "eta_s": eta_s,
                "workers": {
                    str(worker_id): dict(entry)
                    for worker_id, entry in sorted(self._workers.items())
                },
                "latency": summarize_latencies(self._registry.as_dict()),
            }

    def metrics_snapshot(self) -> dict[str, dict]:
        """The live registry plus progress gauges (``/metrics`` source)."""
        with self._lock:
            merged = MetricsRegistry.from_snapshot(self._registry.as_dict())
        snap = self.snapshot()
        merged.gauge(
            "sweep.progress", help="completed fraction of the grid"
        ).set(snap["progress"])
        merged.gauge(
            "sweep.points_total", help="grid points in this run"
        ).set(snap["total"])
        merged.gauge(
            "sweep.points_completed", help="points finished so far"
        ).set(snap["completed"])
        merged.gauge(
            "sweep.points_failed", help="points quarantined so far"
        ).set(snap["failed"])
        merged.gauge(
            "sweep.cache_hit_rate", help="cache hits / attempted points"
        ).set(snap["cache_hit_rate"])
        merged.gauge(
            "sweep.throughput_pts_per_s", help="completed points per second"
        ).set(snap["throughput_pts_per_s"])
        merged.gauge(
            "sweep.workers_seen", help="distinct worker processes observed"
        ).set(len(snap["workers"]))
        return merged.as_dict()


# ----------------------------------------------------------------- HTTP server
class _MonitorHandler(BaseHTTPRequestHandler):
    """Request handler for the three monitor endpoints."""

    server_version = "repro-monitor/1"
    #: Set by :class:`SweepMonitor` on the server object.
    server: Any

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        monitor: SweepMonitor = self.server.monitor
        if split.path == "/status":
            self._send_json(monitor.status.snapshot())
        elif split.path == "/metrics":
            text = render_openmetrics(monitor.status.metrics_snapshot())
            self._send(200, OPENMETRICS_CONTENT_TYPE, text.encode("utf-8"))
        elif split.path == "/logs":
            query = parse_qs(split.query)
            try:
                n = int(query.get("n", [str(DEFAULT_LOG_TAIL)])[0])
            except ValueError:
                self._send_json(
                    {"error": "query parameter n must be an integer"},
                    code=400,
                )
                return
            records = monitor.ring.tail(n)
            self._send_json(
                {
                    "schema": "repro-logs-tail/v1",
                    "count": len(records),
                    "dropped": monitor.ring.dropped,
                    "records": [record.as_dict() for record in records],
                }
            )
        else:
            self._send_json(
                {
                    "error": f"unknown path {split.path!r}",
                    "endpoints": ["/status", "/metrics", "/logs"],
                },
                code=404,
            )

    def _send_json(self, payload: dict[str, Any], code: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(code, "application/json; charset=utf-8", body)

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Route http.server chatter into the structured logger."""
        get_logger("repro.obs.monitor").debug(
            "http request", request=format % args,
            client=self.client_address[0],
        )


class SweepMonitor:
    """The embedded monitoring server around one :class:`SweepStatus`.

    Usage (the CLI does exactly this for ``--monitor PORT``)::

        status = SweepStatus()
        with SweepMonitor(status, port=0) as monitor:
            print(monitor.url)
            run_sweep(grid, status=status, telemetry=True)

    The server runs in a daemon thread (``ThreadingHTTPServer``: each
    request gets its own thread, so a slow scraper never blocks the
    sweep).  ``port=0`` binds an ephemeral port; read :attr:`port` /
    :attr:`url` after construction.  :meth:`close` is idempotent.
    """

    def __init__(
        self,
        status: SweepStatus | None = None,
        port: int = 0,
        host: str = "127.0.0.1",
        ring: RingBufferSink | None = None,
    ) -> None:
        if port < 0 or port > 65535:
            raise MonitorError(f"invalid monitor port {port}")
        self.status = status if status is not None else SweepStatus()
        self._ring = ring
        try:
            self._server = ThreadingHTTPServer((host, port), _MonitorHandler)
        except OSError as exc:
            raise MonitorError(
                f"cannot bind monitor to {host}:{port} ({exc})"
            ) from exc
        self._server.daemon_threads = True
        self._server.monitor = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def ring(self) -> RingBufferSink:
        """The ring buffer ``/logs`` serves (global pipeline's default)."""
        return self._ring if self._ring is not None else global_ring()

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the actual one when constructed with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SweepMonitor":
        """Serve requests in a daemon thread (no-op when already running)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-monitor",
                daemon=True,
            )
            self._thread.start()
            get_logger("repro.obs.monitor").info(
                "monitor serving", url=self.url
            )
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "SweepMonitor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ------------------------------------------------------------------- tail view
def render_status_line(snapshot: dict[str, Any], width: int = 24) -> str:
    """One-line live progress view of a ``/status`` snapshot.

    ``repro tail`` redraws this with a carriage return; it is also
    usable as a plain one-shot summary (``--once``).
    """
    total = snapshot.get("total", 0) or 0
    completed = snapshot.get("completed", 0) or 0
    progress = snapshot.get("progress", 0.0) or 0.0
    filled = int(round(width * min(1.0, max(0.0, progress))))
    bar = "#" * filled + "-" * (width - filled)
    run_id = snapshot.get("run_id") or "-"
    state = snapshot.get("state", "?")
    parts = [
        f"run {run_id}",
        f"[{bar}] {completed}/{total} ({100 * progress:.0f}%)",
        f"{len(snapshot.get('workers', {}))} worker(s)",
    ]
    cached = snapshot.get("cached", 0)
    if cached:
        parts.append(f"{cached} cached")
    failed = snapshot.get("failed", 0)
    if failed:
        parts.append(f"{failed} FAILED")
    retries = snapshot.get("retries", 0)
    if retries:
        parts.append(f"{retries} retries")
    throughput = snapshot.get("throughput_pts_per_s") or 0.0
    if throughput > 0:
        parts.append(f"{throughput:.2f} pt/s")
    latency = snapshot.get("latency") or {}
    summary = (
        latency.get("sweep.point_duration_s")
        or latency.get("serve.request_s")
    )
    if summary and summary.get("count"):
        p50 = summary.get("p50_s")
        p99 = summary.get("p99_s")
        if p50 is not None and p99 is not None:
            parts.append(f"p50 {p50:.3g}s p99 {p99:.3g}s")
    eta = snapshot.get("eta_s")
    if state == "done":
        parts.append("done")
    elif eta is not None:
        parts.append(f"ETA {eta:.0f}s")
    return " | ".join(parts)
