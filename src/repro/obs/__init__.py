"""Observability: event tracing, metrics, spans and timeline export.

The simulator stack computes rich per-request behaviour -- which bank
activated when, who hit an open row, where refresh and TSV contention
stole cycles -- and, before this package, discarded everything except
end-of-run aggregates.  ``repro.obs`` keeps that structure observable
with zero third-party dependencies:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with dict/markdown export.
* :mod:`repro.obs.events` -- typed per-request :class:`EventTrace`
  recording (ACTIVATE / ROW_HIT / REFRESH_STALL / TSV_CONTENTION) with a
  :class:`NullRecorder` fast path for the uninstrumented hot loop.
* :mod:`repro.obs.spans` -- hierarchical :class:`SpanTimeline` phase
  timers for the modelling pipeline.
* :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON (open in
  Perfetto) and per-vault utilization / row-hit breakdown tables.
* :mod:`repro.obs.telemetry` -- cross-process run telemetry: the sweep
  runner injects a :class:`TraceContext` into each worker, workers ship
  :class:`WorkerTelemetry` payloads back, and :class:`RunTelemetry`
  merges everything into one clock-aligned Perfetto trace.
* :mod:`repro.obs.profile` -- a zero-dependency
  :class:`SamplingProfiler` (``--profile hz``) with collapsed-stack and
  top-N self-time output.
* :mod:`repro.obs.openmetrics` -- OpenMetrics/Prometheus text
  exposition (and validator) for any :class:`MetricsRegistry`.
* :mod:`repro.obs.logging` -- zero-dependency structured JSONL logging
  with bound correlation context (``run_id``/``point_id``/``worker_id``/
  ``attempt``), a bounded ring buffer and an on-disk sink
  (``--log-level``/``--log-out``).
* :mod:`repro.obs.monitor` -- the live sweep monitor:
  :class:`SweepStatus` accounting plus the embedded ``/status`` +
  ``/metrics`` + ``/logs`` HTTP server behind ``repro sweep --monitor``
  and ``repro tail``.
* :mod:`repro.obs.tracectx` -- W3C-traceparent-style request tracing:
  deterministic :class:`repro.obs.tracectx.TraceContext` trace/span ids
  and the :class:`RequestTracer` span/link rings behind the serving
  stack's end-to-end Perfetto trees.
* :mod:`repro.obs.histogram` -- shared latency-histogram bucket
  boundaries plus exemplar-aware observe/summarize helpers
  (p50/p95/p99 for ``/status`` and ``repro tail``).
* :mod:`repro.obs.flight` -- the crash-forensics
  :class:`FlightRecorder`: snapshot logs, metrics, traces and in-flight
  state into ``flight-<trace_id>.json`` bundles on quarantine,
  breaker-open or SIGTERM (``repro bundle`` fetches and inspects them).
* :mod:`repro.obs.report` -- the self-contained static HTML run report
  behind ``python -m repro report --html``.

See ``docs/observability.md`` for the event schema and workflows, and
``python -m repro trace`` for the one-command entry point.
"""

from repro.obs.events import (
    EVENT_REGISTRY,
    NULL_RECORDER,
    Event,
    EventKind,
    EventTrace,
    NullRecorder,
    Recorder,
    registered_event_names,
)
from repro.obs.export import (
    chrome_trace,
    event_summary_table,
    stats_vault_table,
    vault_utilization_table,
    write_chrome_trace,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    load_flight_bundle,
    render_flight_bundle,
    validate_flight_bundle,
)
from repro.obs.histogram import (
    latency_summary,
    observe_latency,
    quantile_from_snapshot,
    summarize_latencies,
)
from repro.obs.logging import (
    CONTEXT_KEYS,
    LOG_SCHEMA,
    JsonlSink,
    ListSink,
    LogPipeline,
    LogRecord,
    RingBufferSink,
    StructuredLogger,
    configure_logging,
    get_logger,
    global_pipeline,
    global_ring,
    reset_logging,
    shutdown_logging,
    validate_log_line,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
    pick_exemplar,
)
from repro.obs.monitor import (
    STATUS_SCHEMA,
    SweepMonitor,
    SweepStatus,
    render_status_line,
)
from repro.obs.openmetrics import (
    parse_openmetrics,
    render_openmetrics,
    write_openmetrics,
)
from repro.obs.profile import SamplingProfiler, profile_call
from repro.obs.spans import Span, SpanTimeline, span_or_null
from repro.obs.telemetry import (
    ClockAnchor,
    RunTelemetry,
    TraceContext,
    WorkerTelemetry,
)
from repro.obs.tracectx import (
    TRACEPARENT_SCHEMA,
    RequestTracer,
    parse_traceparent,
)

__all__ = [
    "CONTEXT_KEYS",
    "ClockAnchor",
    "Counter",
    "EVENT_REGISTRY",
    "Event",
    "EventKind",
    "EventTrace",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LOG_SCHEMA",
    "ListSink",
    "LogPipeline",
    "LogRecord",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RequestTracer",
    "RingBufferSink",
    "RunTelemetry",
    "STATUS_SCHEMA",
    "SamplingProfiler",
    "Span",
    "SpanTimeline",
    "StructuredLogger",
    "SweepMonitor",
    "SweepStatus",
    "TRACEPARENT_SCHEMA",
    "TraceContext",
    "WorkerTelemetry",
    "chrome_trace",
    "configure_logging",
    "event_summary_table",
    "get_logger",
    "global_pipeline",
    "global_ring",
    "latency_summary",
    "load_flight_bundle",
    "merge_registries",
    "observe_latency",
    "parse_openmetrics",
    "parse_traceparent",
    "pick_exemplar",
    "profile_call",
    "quantile_from_snapshot",
    "registered_event_names",
    "render_flight_bundle",
    "render_openmetrics",
    "render_status_line",
    "reset_logging",
    "shutdown_logging",
    "span_or_null",
    "stats_vault_table",
    "summarize_latencies",
    "validate_flight_bundle",
    "validate_log_line",
    "vault_utilization_table",
    "write_chrome_trace",
    "write_openmetrics",
]
