"""Observability: event tracing, metrics, spans and timeline export.

The simulator stack computes rich per-request behaviour -- which bank
activated when, who hit an open row, where refresh and TSV contention
stole cycles -- and, before this package, discarded everything except
end-of-run aggregates.  ``repro.obs`` keeps that structure observable
with zero third-party dependencies:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with dict/markdown export.
* :mod:`repro.obs.events` -- typed per-request :class:`EventTrace`
  recording (ACTIVATE / ROW_HIT / REFRESH_STALL / TSV_CONTENTION) with a
  :class:`NullRecorder` fast path for the uninstrumented hot loop.
* :mod:`repro.obs.spans` -- hierarchical :class:`SpanTimeline` phase
  timers for the modelling pipeline.
* :mod:`repro.obs.export` -- Chrome ``trace_event`` JSON (open in
  Perfetto) and per-vault utilization / row-hit breakdown tables.
* :mod:`repro.obs.telemetry` -- cross-process run telemetry: the sweep
  runner injects a :class:`TraceContext` into each worker, workers ship
  :class:`WorkerTelemetry` payloads back, and :class:`RunTelemetry`
  merges everything into one clock-aligned Perfetto trace.
* :mod:`repro.obs.profile` -- a zero-dependency
  :class:`SamplingProfiler` (``--profile hz``) with collapsed-stack and
  top-N self-time output.
* :mod:`repro.obs.openmetrics` -- OpenMetrics/Prometheus text
  exposition (and validator) for any :class:`MetricsRegistry`.
* :mod:`repro.obs.report` -- the self-contained static HTML run report
  behind ``python -m repro report --html``.

See ``docs/observability.md`` for the event schema and workflows, and
``python -m repro trace`` for the one-command entry point.
"""

from repro.obs.events import (
    EVENT_REGISTRY,
    NULL_RECORDER,
    Event,
    EventKind,
    EventTrace,
    NullRecorder,
    Recorder,
    registered_event_names,
)
from repro.obs.export import (
    chrome_trace,
    event_summary_table,
    stats_vault_table,
    vault_utilization_table,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.openmetrics import (
    parse_openmetrics,
    render_openmetrics,
    write_openmetrics,
)
from repro.obs.profile import SamplingProfiler, profile_call
from repro.obs.spans import Span, SpanTimeline, span_or_null
from repro.obs.telemetry import (
    ClockAnchor,
    RunTelemetry,
    TraceContext,
    WorkerTelemetry,
)

__all__ = [
    "ClockAnchor",
    "Counter",
    "EVENT_REGISTRY",
    "Event",
    "EventKind",
    "EventTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RunTelemetry",
    "SamplingProfiler",
    "Span",
    "SpanTimeline",
    "TraceContext",
    "WorkerTelemetry",
    "chrome_trace",
    "event_summary_table",
    "merge_registries",
    "parse_openmetrics",
    "profile_call",
    "registered_event_names",
    "render_openmetrics",
    "span_or_null",
    "stats_vault_table",
    "vault_utilization_table",
    "write_chrome_trace",
    "write_openmetrics",
]
