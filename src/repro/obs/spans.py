"""Hierarchical wall-clock spans for the modelling pipeline.

Where :mod:`repro.obs.events` traces *simulated* time inside the memory
device, spans trace *host* time spent in the modelling code itself --
trace generation, engine runs, planner scoring, FFT phases -- as a
nested timeline::

    timeline = SpanTimeline()
    with timeline.span("fft2d", n=2048):
        with timeline.span("row-phase"):
            ...
        with timeline.span("column-phase"):
            ...
    print(timeline.render())

The instrumented entry points (:mod:`repro.core.simulate`,
:class:`repro.fft.fft2d.FFT2D`, :class:`repro.framework.planner.LayoutPlanner`)
accept an optional timeline; passing None keeps them span-free with no
overhead beyond a single ``is None`` test (:func:`span_or_null`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

from repro.errors import ReproError


class SpanError(ReproError):
    """Invalid span nesting or use."""


@dataclass
class Span:
    """One completed (or still-open) timeline region.

    Attributes:
        name: human-readable region label.
        start_s: ``perf_counter`` timestamp at entry.
        end_s: ``perf_counter`` timestamp at exit (None while open).
        depth: nesting depth (0 for roots).
        parent: index of the enclosing span in the timeline, or -1.
        meta: free-form key/value annotations (problem size, layout, ...).
    """

    name: str
    start_s: float
    end_s: float | None = None
    depth: int = 0
    parent: int = -1
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s


class SpanTimeline:
    """An ordered collection of nested spans with rendering helpers."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []

    # ------------------------------------------------------------- recording
    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Span]:
        """Context manager timing one region; nests under any open span."""
        index = len(self.spans)
        record = Span(
            name=name,
            start_s=time.perf_counter(),
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else -1,
            meta=meta,
        )
        self.spans.append(record)
        self._stack.append(index)
        try:
            yield record
        finally:
            record.end_s = time.perf_counter()
            self._stack.pop()

    # ----------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        """Top-level spans (depth 0), in start order."""
        return [span for span in self.spans if span.depth == 0]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of a span, in start order."""
        index = self.spans.index(span)
        return [child for child in self.spans if child.parent == index]

    def total_s(self) -> float:
        """Summed duration of the root spans."""
        return sum(span.duration_s for span in self.roots())

    def render(self) -> str:
        """Indented text timeline with per-span durations and shares."""
        if not self.spans:
            return "(no spans recorded)"
        total = self.total_s() or 1.0
        lines = []
        for span in self.spans:
            meta = ""
            if span.meta:
                meta = " [" + ", ".join(
                    f"{k}={v}" for k, v in span.meta.items()
                ) + "]"
            lines.append(
                f"{'  ' * span.depth}{span.name:<{32 - 2 * span.depth}} "
                f"{span.duration_s * 1e3:9.2f} ms "
                f"({100 * span.duration_s / total:5.1f}%)"
                f"{meta}"
            )
        return "\n".join(lines)

    def to_chrome_events(
        self, pid: int = 0, tid: int = 0, clock_offset_s: float | None = None
    ) -> list[dict]:
        """Chrome ``trace_event`` slices for the timeline (``ph: "X"``).

        Timestamps are microseconds relative to the first span (or to
        ``clock_offset_s`` when stitching several timelines together).
        """
        if not self.spans:
            return []
        origin = (
            clock_offset_s
            if clock_offset_s is not None
            else min(span.start_s for span in self.spans)
        )
        events = []
        for span in self.spans:
            event = {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (span.start_s - origin) * 1e6,
                "dur": span.duration_s * 1e6,
            }
            if span.meta:
                event["args"] = {k: str(v) for k, v in span.meta.items()}
            events.append(event)
        return events


def span_or_null(timeline: SpanTimeline | None, name: str, **meta: Any):
    """``timeline.span(name)`` when a timeline is given, else a no-op.

    The uninstrumented call costs one ``is None`` test plus a shared
    :func:`contextlib.nullcontext`, so hot modelling paths can be
    instrumented unconditionally.
    """
    if timeline is None:
        return nullcontext()
    return timeline.span(name, **meta)
