"""OpenMetrics / Prometheus text exposition for :class:`MetricsRegistry`.

Renders any registry snapshot in the OpenMetrics text format
(https://prometheus.io/docs/specs/om/open_metrics_spec/), the wire
format every Prometheus-compatible scraper and pushgateway understands:

* counters are suffixed ``_total`` with a ``# TYPE ... counter`` family;
* gauges expose their point value;
* histograms emit cumulative ``_bucket{le="..."}`` series (including
  the mandatory ``le="+Inf"`` bucket), plus ``_sum`` and ``_count``;
* metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (the dots
  our registries use become underscores);
* the exposition ends with the mandatory ``# EOF`` terminator.

A small :func:`parse_openmetrics` validator round-trips the output for
tests and CI gates without pulling in a client library.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from typing import IO

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: # \{(?P<exemplar_labels>[^}]*)\} (?P<exemplar_value>[^ ]+))?$"
)


class OpenMetricsError(ReproError):
    """Malformed exposition text or un-renderable registry."""


def metric_name(name: str) -> str:
    """Sanitize a registry metric name for the exposition format."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Canonical number rendering (integers without a trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _exemplar_suffix(exemplars: Mapping[str, list], index: int) -> str:
    """The ``# {trace_id="..."} value`` exemplar tail for bucket ``index``.

    ``exemplars`` is the ``as_dict()`` form (string bucket indices, no
    entry for un-exemplared buckets); buckets without one get no suffix.
    """
    entry = exemplars.get(str(index))
    if not entry:
        return ""
    value, label = entry
    escaped = str(label).replace("\\", "\\\\").replace('"', '\\"')
    return f' # {{trace_id="{escaped}"}} {_fmt(float(value))}'


def render_openmetrics(
    registry: MetricsRegistry | Mapping[str, dict],
) -> str:
    """The OpenMetrics text exposition of a registry (or its snapshot)."""
    snapshot = (
        registry.as_dict()
        if isinstance(registry, MetricsRegistry)
        else dict(registry)
    )
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        entry = snapshot[raw_name]
        kind = entry["type"]
        name = metric_name(raw_name)
        help_text = _escape_help(str(entry.get("help", "")))
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"{name}_total {_fmt(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"{name} {_fmt(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            exemplars = entry.get("exemplars", {})
            cumulative = 0
            for index, (bound, count) in enumerate(
                zip(entry["bounds"], entry["counts"][:-1], strict=True)
            ):
                cumulative += count
                sample = f'{name}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
                lines.append(sample + _exemplar_suffix(exemplars, index))
            cumulative += entry["counts"][-1]
            sample = f'{name}_bucket{{le="+Inf"}} {cumulative}'
            lines.append(
                sample + _exemplar_suffix(exemplars, len(entry["bounds"]))
            )
            lines.append(
                f"{name}_sum {_fmt(entry['mean'] * entry['count'])}"
            )
            lines.append(f"{name}_count {entry['count']}")
        else:
            raise OpenMetricsError(
                f"unknown instrument type {kind!r} for {raw_name!r}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    target: str | IO[str], registry: MetricsRegistry | Mapping[str, dict]
) -> None:
    """Serialize :func:`render_openmetrics` to a path or open text file."""
    text = render_openmetrics(registry)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse (and validate) an exposition produced by this module.

    Returns ``{family_name: {"type": ..., "samples": {sample_key: value},
    "exemplars": {sample_key: {"labels": ..., "value": ...}}}`` where
    histogram sample keys include their ``le`` label and ``exemplars``
    holds any ``# {...} value`` tails.  Raises :class:`OpenMetricsError`
    on structural violations: missing ``# EOF``, samples without a
    preceding ``# TYPE``, bad names, non-cumulative or ``+Inf``-less
    histogram buckets, counters without ``_total``, exemplars on
    non-histogram samples.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsError("exposition must end with '# EOF'")
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for line in lines[:-1]:
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME_OK.match(name):
                raise OpenMetricsError(f"bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram"):
                raise OpenMetricsError(f"bad metric type {kind!r} for {name}")
            types[name] = kind
            families[name] = {"type": kind, "samples": {}, "exemplars": {}}
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise OpenMetricsError(f"malformed sample line {line!r}")
        sample = match.group("name")
        family = _family_of(sample, types)
        if family is None:
            raise OpenMetricsError(f"sample {sample!r} has no # TYPE family")
        key = sample
        if match.group("labels"):
            key += "{" + match.group("labels") + "}"
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise OpenMetricsError(f"bad value in {line!r}") from exc
        families[family]["samples"][key] = value
        if match.group("exemplar_labels") is not None:
            if not sample.endswith("_bucket"):
                raise OpenMetricsError(
                    f"exemplar on non-bucket sample {sample!r}"
                )
            try:
                exemplar_value = float(match.group("exemplar_value"))
            except ValueError as exc:
                raise OpenMetricsError(f"bad exemplar in {line!r}") from exc
            families[family]["exemplars"][key] = {
                "labels": match.group("exemplar_labels"),
                "value": exemplar_value,
            }
    _validate_families(families)
    return families


def _family_of(sample: str, types: Mapping[str, str]) -> str | None:
    if sample in types and types[sample] == "gauge":
        return sample
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample.endswith(suffix):
            family = sample[: -len(suffix)]
            if family in types:
                return family
    return sample if sample in types else None


def _validate_families(families: Mapping[str, dict]) -> None:
    for name, family in families.items():
        samples = family["samples"]
        if family["type"] == "counter":
            if f"{name}_total" not in samples:
                raise OpenMetricsError(f"counter {name} lacks a _total sample")
        elif family["type"] == "histogram":
            buckets = [
                (key, value)
                for key, value in samples.items()
                if key.startswith(f"{name}_bucket{{")
            ]
            if not any('le="+Inf"' in key for key, _ in buckets):
                raise OpenMetricsError(
                    f"histogram {name} lacks an le=\"+Inf\" bucket"
                )
            counts = [value for _, value in buckets]
            if any(b < a for a, b in zip(counts, counts[1:], strict=False)):
                raise OpenMetricsError(
                    f"histogram {name} buckets are not cumulative"
                )
            if f"{name}_count" not in samples or f"{name}_sum" not in samples:
                raise OpenMetricsError(
                    f"histogram {name} lacks _sum/_count samples"
                )
