"""W3C-traceparent-style trace contexts with deterministic ids.

A :class:`TraceContext` identifies one request-scoped trace: a 32-hex
``trace_id`` shared by every span in the tree, a 16-hex ``span_id`` for
the current operation, and the parent span's id (``None`` at the root).
Ids are *derived* -- ``sha256`` over the request id plus the span path --
so two runs of the same request produce the same tree (DET001/DET002
clean: no wall clock, no global RNG).

The wire format follows the W3C ``traceparent`` header
(https://www.w3.org/TR/trace-context/)::

    00-<32 hex trace_id>-<16 hex span_id>-01

:class:`RequestTracer` collects finished spans per trace into a bounded
ring (always-on tracing must not leak memory) and exports any tree in
the Chrome/Perfetto ``traceEvents`` format so serve traces line up with
the sweep traces from :mod:`repro.obs.export`.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256

from repro.errors import ReproError

TRACEPARENT_SCHEMA = "repro-traceparent/v1"
TRACEPARENT_KEYS = frozenset({"schema", "trace_id", "span_id", "parent_id"})

#: Perfetto pid for the serve-side request track (sweep uses 0/1/100+).
SERVE_PID = 50

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-"
    r"(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-"
    r"(?P<flags>[0-9a-f]{2})$"
)


class TraceError(ReproError):
    """Malformed traceparent header or trace-context misuse."""


def _hex_digest(material: str, nbytes: int) -> str:
    return sha256(material.encode("utf-8")).hexdigest()[: 2 * nbytes]


@dataclass(frozen=True)
class TraceContext:
    """One node in a request's span tree (immutable, deterministic ids)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls, request_id: str) -> "TraceContext":
        """The root context for a request, derived from its request id."""
        trace_id = _hex_digest(f"trace:{request_id}", 16)
        span_id = _hex_digest(f"span:{trace_id}:root", 8)
        return cls(trace_id=trace_id, span_id=span_id, parent_id=None)

    def child(self, name: str, index: int = 0) -> "TraceContext":
        """A child context for operation ``name`` (``index`` disambiguates
        repeats of the same operation, e.g. retry attempts)."""
        span_id = _hex_digest(
            f"span:{self.trace_id}:{self.span_id}:{name}:{index}", 8
        )
        return TraceContext(
            trace_id=self.trace_id, span_id=span_id, parent_id=self.span_id
        )

    def format_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-ready, schema-tagged for the wire)."""
        return {
            "schema": TRACEPARENT_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Rebuild a context shipped via :meth:`as_dict`."""
        if payload.get("schema") != TRACEPARENT_SCHEMA:
            raise TraceError(
                f"expected {TRACEPARENT_SCHEMA}, got {payload.get('schema')!r}"
            )
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
        )


def parse_traceparent(header: str) -> TraceContext:
    """Parse a W3C ``traceparent`` header into a :class:`TraceContext`.

    The parsed span becomes the *parent* of whatever the service does
    next, so the returned context carries the remote span id with no
    local parent.
    """
    match = _TRACEPARENT.match(header.strip().lower())
    if match is None:
        raise TraceError(f"malformed traceparent header {header!r}")
    if match.group("version") == "ff":
        raise TraceError("traceparent version 0xff is forbidden")
    return TraceContext(
        trace_id=match.group("trace_id"),
        span_id=match.group("span_id"),
        parent_id=None,
    )


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: timing plus its place in the tree."""

    context: TraceContext
    name: str
    start_s: float
    duration_s: float
    meta: tuple[tuple[str, object], ...] = ()

    def as_dict(self) -> dict:
        """JSON-ready form (flight bundles, ``/status`` traces)."""
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "meta": dict(self.meta),
        }


@dataclass(frozen=True)
class TraceLink:
    """A cross-trace link (a coalesced request pointing at the shared
    computation's trace)."""

    context: TraceContext
    linked_trace_id: str
    reason: str

    def as_dict(self) -> dict:
        """JSON-ready form (flight bundles, ``/status`` traces)."""
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "linked_trace_id": self.linked_trace_id,
            "reason": self.reason,
        }


class RequestTracer:
    """Bounded, thread-safe collector of per-request span trees.

    Keeps the ``max_traces`` most recent traces; older trees are evicted
    in insertion order so always-on tracing has a hard memory ceiling.
    """

    def __init__(self, max_traces: int = 256) -> None:
        if max_traces < 1:
            raise TraceError(f"max_traces must be >= 1, got {max_traces}")
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._spans: OrderedDict[str, list[SpanRecord]] = OrderedDict()
        self._links: OrderedDict[str, list[TraceLink]] = OrderedDict()
        self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def record(
        self,
        context: TraceContext,
        name: str,
        start_s: float,
        duration_s: float,
        **meta: object,
    ) -> None:
        """Record one finished span under its trace."""
        record = SpanRecord(
            context=context,
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            meta=tuple(sorted(meta.items())),
        )
        with self._lock:
            self._spans.setdefault(context.trace_id, []).append(record)
            self._spans.move_to_end(context.trace_id)
            self._evict_locked()

    def link(self, context: TraceContext, linked_trace_id: str, reason: str) -> None:
        """Record a cross-trace link (e.g. a coalesced request)."""
        entry = TraceLink(
            context=context, linked_trace_id=linked_trace_id, reason=reason
        )
        with self._lock:
            self._spans.setdefault(context.trace_id, [])
            self._spans.move_to_end(context.trace_id)
            self._links.setdefault(context.trace_id, []).append(entry)
            self._evict_locked()

    def _evict_locked(self) -> None:
        while len(self._spans) > self.max_traces:
            trace_id, _ = self._spans.popitem(last=False)
            self._links.pop(trace_id, None)
            self.evicted += 1

    def spans_for(self, trace_id: str) -> list[SpanRecord]:
        """All recorded spans of one trace (tree order not guaranteed)."""
        with self._lock:
            return list(self._spans.get(trace_id, ()))

    def links_for(self, trace_id: str) -> list[TraceLink]:
        """All cross-trace links recorded under ``trace_id``."""
        with self._lock:
            return list(self._links.get(trace_id, ()))

    def trace_ids(self) -> list[str]:
        """Trace ids currently retained, oldest first."""
        with self._lock:
            return list(self._spans)

    def snapshot(self, limit: int = 16) -> list[dict]:
        """JSON-ready dump of the most recent ``limit`` traces."""
        with self._lock:
            recent = list(self._spans.items())[-limit:]
            links = {tid: list(entries) for tid, entries in self._links.items()}
        return [
            {
                "trace_id": trace_id,
                "spans": [record.as_dict() for record in spans],
                "links": [
                    entry.as_dict() for entry in links.get(trace_id, [])
                ],
            }
            for trace_id, spans in recent
        ]

    def to_chrome_events(self, trace_id: str, pid: int = SERVE_PID) -> list[dict]:
        """The Chrome/Perfetto ``traceEvents`` for one trace tree.

        Spans become complete ("X") events on one process track; the
        span/parent ids ride in ``args`` so the tree is reconstructable,
        and links become instant ("i") events.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"serve trace {trace_id[:8]}"},
            }
        ]
        for record in self.spans_for(trace_id):
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": record.start_s * 1e6,
                    "dur": record.duration_s * 1e6,
                    "args": {
                        "trace_id": record.context.trace_id,
                        "span_id": record.context.span_id,
                        "parent_id": record.context.parent_id,
                        **dict(record.meta),
                    },
                }
            )
        for link in self.links_for(trace_id):
            events.append(
                {
                    "name": f"link:{link.reason}",
                    "ph": "i",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0.0,
                    "s": "p",
                    "args": link.as_dict(),
                }
            )
        return events
