"""A zero-dependency sampling profiler for the modelling stack.

``cProfile`` taxes every function call, which distorts exactly the hot
loops (per-request engine stepping) we care about; a sampling profiler
observes the program from outside at a fixed rate and costs nothing
between samples.  This one needs only the standard library: a daemon
thread wakes ``hz`` times per second, snapshots every thread's stack via
``sys._current_frames()``, and accumulates collapsed call stacks.

Outputs:

* :meth:`SamplingProfiler.collapsed` -- Brendan-Gregg folded-stack text
  (``a;b;c 42`` per line), ready for any flamegraph tool;
* :meth:`SamplingProfiler.top_table` -- a markdown top-N table of
  *self* samples per frame, attributing time to ``repro.*`` modules.

Opt in from the CLI with ``python -m repro --profile HZ <command>``
(``--profile-out`` writes the folded stacks next to the table).

Sampling is per-process: worker processes forked by the sweep engine
are not visible to the parent's profiler -- use ``--jobs 1`` (or the
serial fallback) when profiling sweep internals, or rely on the
telemetry spans for cross-process attribution.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from types import FrameType

from repro.errors import ReproError

#: Stack depth cap -- deeper frames are truncated with a marker.
MAX_STACK_DEPTH = 64


class ProfileError(ReproError):
    """Invalid profiler configuration or use."""


def _frame_label(frame: FrameType) -> str:
    """``module:function`` label for one frame."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


def _stack_of(frame: FrameType | None) -> tuple[str, ...]:
    """Root-first label stack for a thread's current frame."""
    labels: list[str] = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    if frame is not None:
        labels.append("...:truncated")
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Periodic whole-process stack sampler.

    Use as a context manager (or ``start()``/``stop()``)::

        with SamplingProfiler(hz=97) as profiler:
            run_workload()
        print(profiler.top_table())
        open("profile.folded", "w").write(profiler.collapsed())

    Attributes:
        hz: target sampling frequency.
        stacks: collapsed-stack sample counts (root-first tuples).
        samples: total number of sampling ticks taken.
    """

    def __init__(self, hz: float = 97.0) -> None:
        if hz <= 0:
            raise ProfileError(f"sampling rate must be positive, got {hz}")
        if hz > 1000:
            raise ProfileError(f"sampling rate {hz} Hz is too fast (max 1000)")
        self.hz = float(hz)
        self.stacks: Counter[tuple[str, ...]] = Counter()
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "SamplingProfiler":
        """Begin sampling in a daemon thread."""
        if self._thread is not None:
            raise ProfileError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # --------------------------------------------------------------- sampling
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample(own_ident)

    def _sample(self, skip_ident: int | None = None) -> None:
        """Take one sample of every thread's stack (skipping our own)."""
        self.samples += 1
        for ident, frame in sys._current_frames().items():
            if ident == skip_ident:
                continue
            stack = _stack_of(frame)
            if stack:
                self.stacks[stack] += 1

    # ----------------------------------------------------------------- views
    def total_stack_samples(self) -> int:
        """Total stack samples recorded (>= samples on multi-thread runs)."""
        return sum(self.stacks.values())

    def self_counts(self) -> Counter[str]:
        """Samples in which each frame label was the *leaf* (self time)."""
        counts: Counter[str] = Counter()
        for stack, count in self.stacks.items():
            counts[stack[-1]] += count
        return counts

    def module_counts(self) -> Counter[str]:
        """Leaf samples aggregated by module (``repro.*`` vs the rest)."""
        counts: Counter[str] = Counter()
        for label, count in self.self_counts().items():
            counts[label.split(":", 1)[0]] += count
        return counts

    def collapsed(self) -> str:
        """Folded-stack text: one ``frame;frame;frame count`` per line.

        Lines are sorted by descending count (ties lexical) -- feed
        directly to flamegraph.pl / speedscope / inferno.
        """
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines)

    def top_table(self, n: int = 15) -> str:
        """Markdown top-``n`` frames by self samples.

        Self time attributes a sample to its leaf frame; the share
        column is against all stack samples, and ``repro.*`` frames are
        what the table exists to surface.
        """
        total = self.total_stack_samples()
        if not total:
            return "(no samples collected)"
        rows = sorted(
            self.self_counts().items(), key=lambda item: (-item[1], item[0])
        )[:n]
        lines = [
            f"{total} stack samples at {self.hz:g} Hz",
            "",
            "| self | share | frame |",
            "|---|---|---|",
        ]
        for label, count in rows:
            lines.append(f"| {count} | {100 * count / total:.1f}% | `{label}` |")
        repro_share = sum(
            count
            for module, count in self.module_counts().items()
            if module == "repro" or module.startswith("repro.")
        )
        lines += [
            "",
            f"repro.* self share: {100 * repro_share / total:.1f}% "
            f"({repro_share}/{total} samples)",
        ]
        return "\n".join(lines)


def profile_call(fn, hz: float = 97.0, *args: object, **kwargs: object):
    """Run ``fn(*args, **kwargs)`` under a profiler; return (result, profiler).

    Convenience wrapper for the CLI's ``--profile`` flag: sampling covers
    exactly the call, even when it raises.
    """
    profiler = SamplingProfiler(hz=hz)
    with profiler:
        result = fn(*args, **kwargs)
    return result, profiler
