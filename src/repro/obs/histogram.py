"""Latency-histogram conventions shared by serve, sweep and the CLI.

:mod:`repro.obs.metrics` provides the mergeable fixed-bucket
:class:`~repro.obs.metrics.Histogram`; this module pins down *which*
buckets the latency-bearing subsystems use and how quantiles are read
back out of plain snapshots.  Consumers like ``/status``, ``repro
tail`` and the flight recorder only ever see ``as_dict()`` snapshots
(often from another process), so the quantile math here works on the
dict form, not on live instruments.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.obs.metrics import Histogram, MetricsRegistry

#: End-to-end ``POST /plan`` latency (seconds): sub-ms cache hits up to
#: multi-second deadline-bounded computes.
SERVE_LATENCY_BOUNDS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Time a request spends queued before a pool thread picks it up.
QUEUE_WAIT_BOUNDS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)

#: One retryable attempt of a point computation.
ATTEMPT_BOUNDS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Engine phases (row/column pass, permutation) inside a worker.
ENGINE_PHASE_BOUNDS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Whole sweep points, as seen by the monitor.
POINT_DURATION_BOUNDS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)

#: The quantiles every latency surface reports.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def observe_latency(
    registry: MetricsRegistry,
    name: str,
    seconds: float,
    bounds: tuple[float, ...],
    exemplar: str | None = None,
    help: str = "",
) -> Histogram:
    """Record one latency observation on a shared-bounds histogram."""
    hist = registry.histogram(name, bounds, help)
    hist.observe(seconds, exemplar=exemplar)
    return hist


def quantile_from_snapshot(entry: Mapping[str, object], q: float) -> float:
    """The ``q``-quantile of a histogram ``as_dict()`` snapshot.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile` (bucket upper
    bound, observed max for the overflow bucket) but runs on the plain
    dict so remote snapshots need no instrument reconstruction.
    """
    count = int(entry["count"])  # type: ignore[arg-type]
    if not count:
        return 0.0
    bounds = list(entry["bounds"])  # type: ignore[call-overload]
    counts = list(entry["counts"])  # type: ignore[call-overload]
    rank = q * count
    seen = 0
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= rank and bucket_count:
            if index < len(bounds):
                return float(bounds[index])
            return float(entry["max"])  # type: ignore[arg-type]
    return float(entry["max"])  # type: ignore[arg-type]


def latency_summary(entry: Mapping[str, object]) -> dict:
    """p50/p95/p99 + count summary of a histogram snapshot (JSON-ready)."""
    return {
        "count": int(entry["count"]),  # type: ignore[arg-type]
        "p50_s": quantile_from_snapshot(entry, 0.5),
        "p95_s": quantile_from_snapshot(entry, 0.95),
        "p99_s": quantile_from_snapshot(entry, 0.99),
    }


def summarize_latencies(snapshot: Mapping[str, Mapping[str, object]]) -> dict:
    """Latency summaries for every histogram in a registry snapshot."""
    return {
        name: latency_summary(entry)
        for name, entry in sorted(snapshot.items())
        if entry.get("type") == "histogram"
    }
