"""Crash-forensics flight recorder: one self-contained post-mortem bundle.

A :class:`FlightRecorder` is wired up once per process with *providers*
-- zero-argument callables that snapshot a subsystem (log ring, metrics
registry, serve status, breaker state, resolved config, in-flight
request table, recent traces).  When something goes wrong (quarantine,
breaker-open, SIGTERM) or on demand (``repro bundle`` /
``GET /debug/bundle``) the recorder captures every provider into a
single ``flight-<trace_id>.json`` so the forensic record survives the
process.

Providers are captured defensively: a provider that raises contributes
``{"error": ...}`` instead of sinking the whole bundle -- a flight
recorder that crashes during the crash is worse than useless.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Callable
from typing import IO

from repro.errors import ReproError

FLIGHT_SCHEMA = "repro-flight/v1"
FLIGHT_KEYS = frozenset(
    {
        "schema",
        "trigger",
        "trace_id",
        "created_unix_s",
        "sections",
    }
)

#: Section names a bundle may carry (providers register under these).
FLIGHT_SECTIONS = (
    "logs",
    "metrics",
    "status",
    "breaker",
    "config",
    "in_flight",
    "traces",
)


class FlightError(ReproError):
    """Malformed flight bundle or recorder misuse."""


class FlightRecorder:
    """Collects subsystem snapshots into dumpable post-mortem bundles."""

    def __init__(self, out_dir: str = ".") -> None:
        self.out_dir = out_dir
        self._providers: dict[str, Callable[[], object]] = {}
        self._lock = threading.Lock()
        self.dumps = 0

    def register(self, section: str, provider: Callable[[], object]) -> None:
        """Attach ``provider`` as the snapshot source for ``section``."""
        if section not in FLIGHT_SECTIONS:
            raise FlightError(
                f"unknown flight section {section!r}; "
                f"expected one of {sorted(FLIGHT_SECTIONS)}"
            )
        with self._lock:
            self._providers[section] = provider

    def capture(self, trigger: str, trace_id: str | None = None) -> dict:
        """Snapshot every registered provider into one bundle dict."""
        with self._lock:
            providers = dict(self._providers)
        sections: dict[str, object] = {}
        for section, provider in sorted(providers.items()):
            try:
                sections[section] = provider()
            except Exception as exc:  # noqa: BLE001 - forensics must not raise
                sections[section] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "schema": FLIGHT_SCHEMA,
            "trigger": trigger,
            "trace_id": trace_id,
            "created_unix_s": time.time(),
            "sections": sections,
        }

    def dump(self, trigger: str, trace_id: str | None = None) -> str:
        """Capture a bundle and write it to ``flight-<trace_id>.json``.

        Returns the written path.  The filename falls back to the
        trigger when no trace is implicated (e.g. SIGTERM).
        """
        bundle = self.capture(trigger, trace_id=trace_id)
        stem = trace_id if trace_id else trigger.replace("_", "-")
        path = os.path.join(self.out_dir, f"flight-{stem}.json")
        os.makedirs(self.out_dir, exist_ok=True)
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        os.replace(tmp_path, path)
        with self._lock:
            self.dumps += 1
        return path


def validate_flight_bundle(bundle: dict) -> dict:
    """Validate a bundle's envelope; returns it for chaining."""
    if not isinstance(bundle, dict):
        raise FlightError(f"flight bundle must be a dict, got {type(bundle)}")
    if bundle.get("schema") != FLIGHT_SCHEMA:
        raise FlightError(
            f"expected {FLIGHT_SCHEMA}, got {bundle.get('schema')!r}"
        )
    missing = FLIGHT_KEYS - set(bundle)
    if missing:
        raise FlightError(f"flight bundle missing keys: {sorted(missing)}")
    sections = bundle["sections"]
    if not isinstance(sections, dict):
        raise FlightError("flight bundle 'sections' must be a dict")
    unknown = set(sections) - set(FLIGHT_SECTIONS)
    if unknown:
        raise FlightError(f"unknown flight sections: {sorted(unknown)}")
    return bundle


def load_flight_bundle(source: str | IO[str]) -> dict:
    """Read and validate a ``flight-*.json`` bundle from a path or file."""
    try:
        if isinstance(source, str):
            with open(source, encoding="utf-8") as handle:
                bundle = json.load(handle)
        else:
            bundle = json.load(source)
    except (OSError, json.JSONDecodeError) as exc:
        raise FlightError(f"cannot read flight bundle ({exc})") from exc
    return validate_flight_bundle(bundle)


def render_flight_bundle(bundle: dict) -> str:
    """A human-oriented summary of a bundle (``repro bundle --inspect``)."""
    validate_flight_bundle(bundle)
    lines = [
        f"flight bundle ({bundle['schema']})",
        f"  trigger:  {bundle['trigger']}",
        f"  trace_id: {bundle['trace_id'] or '-'}",
        f"  captured: {bundle['created_unix_s']:.3f} (unix)",
    ]
    sections = bundle["sections"]
    for name in FLIGHT_SECTIONS:
        if name not in sections:
            continue
        lines.append(f"  [{name}]")
        lines.extend(f"    {line}" for line in _render_section(name, sections[name]))
    return "\n".join(lines)


def _render_section(name: str, payload: object) -> list[str]:
    if isinstance(payload, dict) and "error" in payload and len(payload) == 1:
        return [f"capture failed: {payload['error']}"]
    if name == "logs" and isinstance(payload, dict):
        records = payload.get("records", [])
        lines = [
            f"{len(records)} records, {payload.get('dropped', 0)} dropped"
        ]
        for record in records[-5:]:
            if isinstance(record, dict):
                lines.append(
                    f"{record.get('level', '?'):<8} {record.get('message', '')}"
                )
        return lines
    if name == "metrics" and isinstance(payload, dict):
        histograms = sum(
            1
            for entry in payload.values()
            if isinstance(entry, dict) and entry.get("type") == "histogram"
        )
        return [f"{len(payload)} instruments ({histograms} histograms)"]
    if name == "traces" and isinstance(payload, list):
        lines = [f"{len(payload)} traces retained"]
        for trace in payload[-3:]:
            if isinstance(trace, dict):
                lines.append(
                    f"{trace.get('trace_id', '?')}: "
                    f"{len(trace.get('spans', []))} spans, "
                    f"{len(trace.get('links', []))} links"
                )
        return lines
    if name == "in_flight" and isinstance(payload, list):
        lines = [f"{len(payload)} requests in flight"]
        for entry in payload[:5]:
            if isinstance(entry, dict):
                lines.append(
                    f"{entry.get('request_id', '?')} "
                    f"trace={entry.get('trace_id', '?')} "
                    f"age={entry.get('age_s', 0):.3f}s"
                )
        return lines
    text = json.dumps(payload, sort_keys=True, default=str)
    if len(text) > 200:
        text = text[:197] + "..."
    return [text]
