"""Cross-process run telemetry: trace contexts, worker payloads, merging.

The parallel sweep engine fans grid points out over worker processes,
and before this module those workers were observability black holes:
per-point spans, retry timing and cache behaviour died inside the child
process, leaving a 40-point sweep summarised by one wall-clock number.
This module threads one trace through the whole run:

* :class:`TraceContext` -- the identity the runner injects into each
  worker task (run id, point id, attempt);
* :class:`WorkerTelemetry` -- what a worker records locally (a
  :class:`~repro.obs.spans.SpanTimeline`, run-telemetry events, a
  :class:`~repro.obs.metrics.MetricsRegistry`) plus a
  :class:`ClockAnchor` pairing its monotonic clock with wall time, all
  serialized as one JSON-native payload shipped back with the result;
* :class:`RunTelemetry` -- the parent-side merge: every worker payload
  is aligned into the parent's monotonic clock domain via the anchors,
  queue waits are derived from dispatch-vs-start timestamps, and the
  whole run exports as ONE Chrome ``trace_event`` JSON -- runner spans,
  per-point lifecycle tracks (queue wait, retries, cache hits) and one
  process per worker.

All wall-clock reads in the repository's deterministic layers happen
here (``repro.obs`` is the DET001-exempt zone); telemetry is run
*metadata* and never part of a deterministic result document.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import IO, Any

from repro.errors import ReproError
from repro.obs.events import (
    EV_QUEUE_WAIT,
    EV_WORKER_START,
    EventKind,
    registered_event_names,
)
from repro.obs.export import event_slice_name
from repro.obs.logging import (
    DEBUG,
    ListSink,
    LogPipeline,
    LogRecord,
    StructuredLogger,
    global_pipeline,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanTimeline

#: Schema tag stamped into every serialized worker payload.
WORKER_TELEMETRY_SCHEMA = "repro-worker-telemetry/v1"

#: Chrome pid of the parent runner's span track.
RUNNER_PID = 0

#: Chrome pid of the per-point lifecycle track group.
POINTS_PID = 1

#: First chrome pid assigned to worker processes (then sequential).
WORKER_PID_BASE = 100

#: Bucket bounds for the queue-wait histogram (seconds).
_QUEUE_WAIT_BOUNDS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


class TelemetryError(ReproError):
    """Malformed telemetry payload or invalid telemetry use."""


# ---------------------------------------------------------------- clock anchor
@dataclass(frozen=True)
class ClockAnchor:
    """A simultaneous reading of the wall clock and the monotonic clock.

    ``perf_counter`` timestamps are only meaningful within one process;
    pairing each process's monotonic clock with wall time at a known
    instant lets the parent translate worker timestamps into its own
    monotonic domain: two anchors differ by the (wall-estimated) offset
    between the two monotonic clocks.
    """

    wall_s: float
    perf_s: float

    @classmethod
    def now(cls) -> "ClockAnchor":
        """Anchor this instant (one wall read, one monotonic read)."""
        return cls(wall_s=time.time(), perf_s=time.perf_counter())

    def offset_to(self, other: "ClockAnchor") -> float:
        """Seconds to ADD to this clock's perf timestamps to express
        them in ``other``'s perf domain."""
        return (self.wall_s - self.perf_s) - (other.wall_s - other.perf_s)

    def as_dict(self) -> dict[str, float]:
        """JSON-native form."""
        return {"wall_s": self.wall_s, "perf_s": self.perf_s}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClockAnchor":
        """Inverse of :meth:`as_dict`."""
        return cls(wall_s=float(data["wall_s"]), perf_s=float(data["perf_s"]))


# --------------------------------------------------------------- trace context
@dataclass(frozen=True)
class TraceContext:
    """The identity a sweep runner injects into one worker task.

    Attributes:
        run_id: stable identifier of the whole sweep run (the runner
            derives it from the sweep's content digest).
        point_id: grid index of the point this task executes.
        attempt: 1-based attempt number under the resilient executor.
    """

    run_id: str
    point_id: int
    attempt: int = 1

    def as_dict(self) -> dict[str, Any]:
        """JSON-native form (embedded in worker task payloads)."""
        return {
            "run_id": self.run_id,
            "point_id": self.point_id,
            "attempt": self.attempt,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceContext":
        """Inverse of :meth:`as_dict`."""
        return cls(
            run_id=str(data["run_id"]),
            point_id=int(data["point_id"]),
            attempt=int(data.get("attempt", 1)),
        )


# ------------------------------------------------------------ telemetry events
@dataclass(frozen=True)
class TelemetryEvent:
    """One run-telemetry event in some process's monotonic clock.

    Attributes:
        kind: a registered :class:`~repro.obs.events.EventKind` value.
        ts_s: ``perf_counter`` timestamp (process-local until aligned).
        dur_s: duration (0 for instants).
        meta: free-form JSON-native annotations (point, attempt, ...).
    """

    kind: int
    ts_s: float
    dur_s: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-native form."""
        return {
            "kind": int(self.kind),
            "ts_s": self.ts_s,
            "dur_s": self.dur_s,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryEvent":
        """Inverse of :meth:`as_dict` (validates the kind is registered)."""
        kind = int(data["kind"])
        try:
            name = EventKind(kind).name
        except ValueError:
            name = ""
        if name not in registered_event_names():
            raise TelemetryError(f"unregistered telemetry event kind {kind}")
        return cls(
            kind=kind,
            ts_s=float(data["ts_s"]),
            dur_s=float(data.get("dur_s", 0.0)),
            meta=dict(data.get("meta", {})),
        )


def _span_to_dict(span: Span, span_id: int) -> dict[str, Any]:
    return {
        "id": span_id,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "depth": span.depth,
        "parent": span.parent,
        "meta": {k: _json_safe(v) for k, v in span.meta.items()},
    }


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _timeline_to_dicts(timeline: SpanTimeline) -> list[dict[str, Any]]:
    return [
        _span_to_dict(span, index) for index, span in enumerate(timeline.spans)
    ]


def _timeline_from_dicts(spans: list[dict[str, Any]]) -> SpanTimeline:
    timeline = SpanTimeline()
    for entry in spans:
        timeline.spans.append(
            Span(
                name=str(entry["name"]),
                start_s=float(entry["start_s"]),
                end_s=(
                    None if entry.get("end_s") is None else float(entry["end_s"])
                ),
                depth=int(entry.get("depth", 0)),
                parent=int(entry.get("parent", -1)),
                meta=dict(entry.get("meta", {})),
            )
        )
    return timeline


# ------------------------------------------------------------ worker telemetry
class WorkerTelemetry:
    """What one worker records about one grid-point execution.

    Created at task pickup (:meth:`start` anchors the clocks and records
    a ``WORKER_START`` event), filled by the worker body (spans around
    trace generation and simulation, telemetry events, metrics), and
    shipped back to the parent as the JSON-native :meth:`as_dict`
    payload riding on the task outcome.
    """

    def __init__(
        self,
        context: TraceContext,
        worker_id: int | None = None,
        anchor: ClockAnchor | None = None,
    ) -> None:
        self.context = context
        self.worker_id = os.getpid() if worker_id is None else worker_id
        self.anchor = anchor or ClockAnchor.now()
        self.timeline = SpanTimeline()
        self.registry = MetricsRegistry()
        self.events: list[TelemetryEvent] = []
        #: Structured log records captured by :meth:`logger`, shipped
        #: home with the payload and clock-aligned on merge like spans.
        self.logs: list[LogRecord] = []
        self._log_pipeline = LogPipeline(level=DEBUG)
        self._log_pipeline.sinks = [ListSink(self.logs)]

    @classmethod
    def start(cls, context: TraceContext) -> "WorkerTelemetry":
        """Begin recording: anchor the clocks, mark ``WORKER_START``."""
        telemetry = cls(context)
        telemetry.record_event(
            EV_WORKER_START,
            point=context.point_id,
            attempt=context.attempt,
        )
        return telemetry

    def now(self) -> float:
        """This process's monotonic clock (``perf_counter`` seconds)."""
        return time.perf_counter()

    def logger(
        self, name: str = "repro.sweep.worker", **extra: Any
    ) -> StructuredLogger:
        """A logger whose records are captured into :attr:`logs`.

        The returned logger is pre-bound with the full correlation
        context (run, point, worker pid, attempt, plus any non-``None``
        ``extra`` context such as a ``trace_id``) and writes into this
        payload only -- records travel home with the task outcome and
        reach the parent's sinks via
        :meth:`RunTelemetry.merge_worker`, clock-aligned like spans.
        """
        context: dict[str, Any] = {
            "run_id": self.context.run_id,
            "point_id": self.context.point_id,
            "worker_id": self.worker_id,
            "attempt": self.context.attempt,
        }
        context.update(
            {key: value for key, value in extra.items() if value is not None}
        )
        return StructuredLogger(name, context, self._log_pipeline)

    def record_event(
        self, kind: int, dur_s: float = 0.0, ts_s: float | None = None,
        **meta: Any,
    ) -> TelemetryEvent:
        """Record one run-telemetry event (timestamped now by default)."""
        event = TelemetryEvent(
            kind=int(kind),
            ts_s=self.now() if ts_s is None else ts_s,
            dur_s=dur_s,
            meta={k: _json_safe(v) for k, v in meta.items()},
        )
        self.events.append(event)
        return event

    def as_dict(self) -> dict[str, Any]:
        """The JSON-native payload shipped back with the task outcome."""
        return {
            "schema": WORKER_TELEMETRY_SCHEMA,
            "run_id": self.context.run_id,
            "point_id": self.context.point_id,
            "attempt": self.context.attempt,
            "worker_id": self.worker_id,
            "anchor": self.anchor.as_dict(),
            "spans": _timeline_to_dicts(self.timeline),
            "events": [event.as_dict() for event in self.events],
            "metrics": self.registry.as_dict(),
            "logs": [record.as_dict() for record in self.logs],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkerTelemetry":
        """Rebuild a worker payload (inverse of :meth:`as_dict`).

        Raises :class:`TelemetryError` on a missing/foreign schema tag
        or malformed members -- a worker payload is machine-generated,
        so anything unexpected is a bug, not user input to coerce.
        """
        if not isinstance(data, dict):
            raise TelemetryError("worker telemetry payload must be a mapping")
        if data.get("schema") != WORKER_TELEMETRY_SCHEMA:
            raise TelemetryError(
                f"not a worker telemetry payload "
                f"(schema {data.get('schema')!r} != {WORKER_TELEMETRY_SCHEMA!r})"
            )
        try:
            context = TraceContext(
                run_id=str(data["run_id"]),
                point_id=int(data["point_id"]),
                attempt=int(data.get("attempt", 1)),
            )
            telemetry = cls(
                context,
                worker_id=int(data["worker_id"]),
                anchor=ClockAnchor.from_dict(data["anchor"]),
            )
            telemetry.timeline = _timeline_from_dicts(data.get("spans", []))
            telemetry.events = [
                TelemetryEvent.from_dict(entry)
                for entry in data.get("events", [])
            ]
            telemetry.registry = MetricsRegistry.from_snapshot(
                data.get("metrics", {})
            )
            telemetry.logs.extend(
                LogRecord.from_dict(entry)
                for entry in data.get("logs", [])
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(
                f"malformed worker telemetry payload ({exc!r})"
            ) from exc
        return telemetry


# --------------------------------------------------------------- run telemetry
class RunTelemetry:
    """The parent-side merge of a whole run's telemetry.

    Collects the runner's own spans and events, dispatch timestamps per
    point, and every worker's :class:`WorkerTelemetry` payload -- each
    aligned into the parent's monotonic clock domain via the paired
    :class:`ClockAnchor` readings -- and exports the lot as one
    Chrome/Perfetto trace plus a merged metrics registry.
    """

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        self.anchor = ClockAnchor.now()
        self.timeline = SpanTimeline()
        self.registry = MetricsRegistry()
        self.events: list[TelemetryEvent] = []
        #: Aligned worker records, in merge order.  Each holds the raw
        #: payload's identity plus spans/events shifted into the parent
        #: clock domain.
        self.workers: list[dict[str, Any]] = []
        self._submits: dict[int, float] = {}

    @classmethod
    def start(cls, run_id: str) -> "RunTelemetry":
        """Anchor the parent clocks and begin a run trace."""
        return cls(run_id)

    # ------------------------------------------------------------- recording
    def now(self) -> float:
        """The parent's monotonic clock (``perf_counter`` seconds)."""
        return time.perf_counter()

    def span(self, name: str, **meta: Any):
        """A parent-side timeline span (context manager)."""
        return self.timeline.span(name, **meta)

    def mark_submit(self, point_id: int) -> None:
        """Record the dispatch instant of one point (queue-wait origin)."""
        self._submits[point_id] = self.now()

    def record_event(
        self, kind: int, dur_s: float = 0.0, ts_s: float | None = None,
        **meta: Any,
    ) -> TelemetryEvent:
        """Record one parent-side run-telemetry event."""
        event = TelemetryEvent(
            kind=int(kind),
            ts_s=self.now() if ts_s is None else ts_s,
            dur_s=dur_s,
            meta={k: _json_safe(v) for k, v in meta.items()},
        )
        self.events.append(event)
        return event

    def context_for(self, point_id: int, attempt: int = 1) -> TraceContext:
        """The :class:`TraceContext` to inject into one worker task."""
        return TraceContext(
            run_id=self.run_id, point_id=point_id, attempt=attempt
        )

    # --------------------------------------------------------------- merging
    def merge_worker(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Fold one worker payload in; returns the aligned record.

        Spans and events are shifted into the parent's monotonic domain
        (anchor-pair offset), worker span ids are namespaced by worker
        so duplicate ids across processes can never collide, a
        ``QUEUE_WAIT`` event is derived from the dispatch timestamp, and
        the worker's metrics fold into :attr:`registry`.
        """
        telemetry = WorkerTelemetry.from_dict(payload)
        if telemetry.context.run_id != self.run_id:
            raise TelemetryError(
                f"worker payload belongs to run {telemetry.context.run_id!r}, "
                f"expected {self.run_id!r}"
            )
        offset = telemetry.anchor.offset_to(self.anchor)
        point_id = telemetry.context.point_id
        spans = []
        for span_id, span in enumerate(telemetry.timeline.spans):
            aligned = _span_to_dict(span, span_id)
            aligned["id"] = f"{telemetry.worker_id}/{point_id}/{span_id}"
            aligned["start_s"] = span.start_s + offset
            if span.end_s is not None:
                aligned["end_s"] = span.end_s + offset
            spans.append(aligned)
        events = [
            TelemetryEvent(
                kind=event.kind,
                ts_s=event.ts_s + offset,
                dur_s=event.dur_s,
                meta=event.meta,
            )
            for event in telemetry.events
        ]
        logs = [log.shifted(offset) for log in telemetry.logs]
        record = {
            "worker_id": telemetry.worker_id,
            "point_id": point_id,
            "attempt": telemetry.context.attempt,
            "clock_offset_s": offset,
            "spans": spans,
            "events": events,
            "logs": logs,
        }
        self.workers.append(record)
        self.registry.merge_snapshot(telemetry.registry.as_dict())
        pipeline = global_pipeline()
        for log in logs:
            if pipeline.enabled_for(log.level):
                pipeline.emit(log)
        submitted = self._submits.get(point_id)
        started = min((span["start_s"] for span in spans), default=None)
        if submitted is not None and started is not None:
            wait = max(0.0, started - submitted)
            self.record_event(
                EV_QUEUE_WAIT,
                dur_s=wait,
                ts_s=submitted,
                point=point_id,
                worker=telemetry.worker_id,
            )
            self.registry.histogram(
                "telemetry.queue_wait_s",
                _QUEUE_WAIT_BOUNDS,
                help="dispatch-to-worker-start wait per point (seconds)",
            ).observe(wait)
        return record

    # ----------------------------------------------------------------- views
    def worker_ids(self) -> list[int]:
        """Distinct worker (OS process) ids, in first-seen order."""
        seen: dict[int, None] = {}
        for record in self.workers:
            seen.setdefault(record["worker_id"], None)
        return list(seen)

    def origin_s(self) -> float:
        """Earliest aligned timestamp across the whole run (0 if empty)."""
        candidates = [span.start_s for span in self.timeline.spans]
        candidates += [event.ts_s for event in self.events]
        candidates += list(self._submits.values())
        for record in self.workers:
            candidates += [span["start_s"] for span in record["spans"]]
            candidates += [event.ts_s for event in record["events"]]
        return min(candidates, default=0.0)

    def summary(self) -> str:
        """One-line human description of the merged trace."""
        spans = len(self.timeline) + sum(
            len(record["spans"]) for record in self.workers
        )
        events = len(self.events) + sum(
            len(record["events"]) for record in self.workers
        )
        return (
            f"run {self.run_id}: {len(self.workers)} worker payload(s) from "
            f"{len(self.worker_ids())} process(es), {spans} spans, "
            f"{events} telemetry events"
        )

    # ---------------------------------------------------------------- export
    def chrome_trace(self, metadata: dict | None = None) -> dict:
        """ONE Chrome ``trace_event`` JSON for the entire run.

        Track layout: pid :data:`RUNNER_PID` carries the parent runner's
        span timeline; pid :data:`POINTS_PID` has one thread per grid
        point with its lifecycle slices (``QUEUE_WAIT`` waits, ``RETRY``
        and ``CACHE_HIT`` instants); each worker process gets its own
        pid (named after the worker's OS pid) whose slices are the
        clock-aligned worker spans.  All timestamps are microseconds
        relative to the earliest aligned instant, so the viewer opens at
        t=0 with every process on one monotonic axis.
        """
        origin = self.origin_s()
        out: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": RUNNER_PID,
                "tid": 0,
                "args": {"name": "sweep runner"},
            }
        ]
        out.extend(
            self.timeline.to_chrome_events(
                pid=RUNNER_PID, tid=0, clock_offset_s=origin
            )
        )

        point_ids = sorted(
            {event.meta["point"] for event in self.events
             if "point" in event.meta}
            | {record["point_id"] for record in self.workers}
        )
        if point_ids:
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": POINTS_PID,
                    "tid": 0,
                    "args": {"name": "sweep points"},
                }
            )
        for point_id in point_ids:
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": POINTS_PID,
                    "tid": point_id,
                    "args": {"name": f"point {point_id}"},
                }
            )
        for event in self.events:
            tid = event.meta.get("point", 0)
            entry = {
                "name": event_slice_name(event.kind),
                "cat": "telemetry",
                "pid": POINTS_PID,
                "tid": tid,
                "ts": (event.ts_s - origin) * 1e6,
                "args": {k: _json_safe(v) for k, v in event.meta.items()},
            }
            if event.dur_s > 0:
                entry["ph"] = "X"
                entry["dur"] = event.dur_s * 1e6
            else:
                entry["ph"] = "i"
                entry["s"] = "t"
            out.append(entry)

        pid_of = {
            worker_id: WORKER_PID_BASE + index
            for index, worker_id in enumerate(self.worker_ids())
        }
        for worker_id, pid in pid_of.items():
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"worker pid={worker_id}"},
                }
            )
        for record in self.workers:
            pid = pid_of[record["worker_id"]]
            for span in record["spans"]:
                end = span["end_s"]
                duration = 0.0 if end is None else end - span["start_s"]
                args = {str(k): _json_safe(v) for k, v in span["meta"].items()}
                args["span"] = span["id"]
                args["point"] = record["point_id"]
                out.append(
                    {
                        "name": span["name"],
                        "cat": "span",
                        "ph": "X",
                        "pid": pid,
                        "tid": 0,
                        "ts": (span["start_s"] - origin) * 1e6,
                        "dur": duration * 1e6,
                        "args": args,
                    }
                )
            for event in record["events"]:
                out.append(
                    {
                        "name": event_slice_name(event.kind),
                        "cat": "telemetry",
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "tid": 0,
                        "ts": (event.ts_s - origin) * 1e6,
                        "args": {
                            k: _json_safe(v) for k, v in event.meta.items()
                        },
                    }
                )

        doc: dict = {"traceEvents": out, "displayTimeUnit": "ms"}
        other = {"run_id": self.run_id, "workers": len(pid_of)}
        if metadata:
            other.update({str(k): str(v) for k, v in metadata.items()})
        doc["otherData"] = {str(k): str(v) for k, v in other.items()}
        return doc

    def write_chrome_trace(
        self, target: str | IO[str], metadata: dict | None = None
    ) -> None:
        """Serialize :meth:`chrome_trace` to a path or open text file."""
        doc = self.chrome_trace(metadata=metadata)
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
        else:
            json.dump(doc, target)
