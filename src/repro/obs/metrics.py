"""A zero-dependency metrics registry: counters, gauges, histograms.

The simulator stack records its internal behaviour (activation counts,
stall time, service-time distributions, queue depths) into a
:class:`MetricsRegistry`.  The registry is deliberately tiny -- three
instrument kinds, plain-dict export, markdown rendering -- so it can be
embedded in hot paths, CLI commands and reports without pulling in a
telemetry framework.

Instruments are created lazily and get-or-create by name, so independent
components can contribute to one registry without coordination::

    registry = MetricsRegistry()
    registry.counter("memory.requests").inc(1024)
    registry.histogram("memory.service_ns", (2, 5, 10, 20, 50)).observe(4.8)
    print(registry.render_markdown())
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.errors import ReproError


class MetricsError(ReproError):
    """Invalid metric construction or use."""


def pick_exemplar(
    current: tuple[float, str] | None, candidate: tuple[float, str]
) -> tuple[float, str]:
    """Choose between two bucket exemplars, order-independently.

    The slower observation wins (exemplars exist to explain the bucket
    tail); equal values tie-break on the lexicographically smaller
    label, so any observation/merge order converges on the same pick.
    """
    if current is None:
        return candidate
    if candidate[0] != current[0]:
        return candidate if candidate[0] > current[0] else current
    return candidate if candidate[1] < current[1] else current


@dataclass
class Counter:
    """A monotonically increasing count (requests served, events seen)."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricsError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-ready)."""
        return {"type": "counter", "value": self.value, "help": self.help}


@dataclass
class Gauge:
    """A point-in-time value that can move both ways (depth, utilization)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (may be negative)."""
        self.value += delta

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-ready)."""
        return {"type": "gauge", "value": self.value, "help": self.help}


@dataclass
class Histogram:
    """A fixed-bucket histogram of observations (latency, depth, size).

    Buckets are defined by their inclusive upper bounds; one implicit
    overflow bucket catches everything above the last bound.  Bounds are
    fixed at construction -- observation is O(log buckets) and allocation
    free, which keeps it safe to call from the simulator hot loop.
    """

    name: str
    bounds: tuple[float, ...]
    help: str = ""
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    #: bucket index -> (observed value, exemplar label, e.g. a trace_id)
    exemplars: dict[int, tuple[float, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.bounds = tuple(float(b) for b in self.bounds)
        if not self.bounds:
            raise MetricsError(f"histogram {self.name}: needs at least one bound")
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:], strict=False)):
            raise MetricsError(
                f"histogram {self.name}: bounds must be strictly increasing"
            )
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation, optionally tagged with an exemplar.

        An exemplar ties the bucket tail back to the event that produced
        it (by convention a trace_id).  Each bucket keeps one exemplar,
        chosen by :func:`pick_exemplar` so the choice is independent of
        observation and merge order.
        """
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.total += value
        self.count += 1
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if exemplar is not None:
            self.exemplars[index] = pick_exemplar(
                self.exemplars.get(index), (value, exemplar)
            )

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket boundaries.

        Returns the upper bound of the bucket holding the requested rank
        (the largest observed value for the overflow bucket) -- the usual
        fixed-bucket estimate, biased at most one bucket width upward.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_value
        return self.max_value

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-ready)."""
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
            "help": self.help,
            "exemplars": {
                str(index): [value, label]
                for index, (value, label) in sorted(self.exemplars.items())
            },
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are get-or-create by name; re-requesting a name returns
    the existing instrument (and raises if the kind disagrees), so
    independent producers can share one registry.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def _get_or_create(self, name: str, factory, kind: type):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, requested {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self, name: str, bounds: Iterable[float] = (), help: str = ""
    ) -> Histogram:
        """Get or create the histogram ``name`` with the given bucket bounds."""
        bounds = tuple(bounds)

        def build() -> Histogram:
            if not bounds:
                raise MetricsError(
                    f"histogram {name!r} does not exist yet; bounds required"
                )
            return Histogram(name, bounds, help)

        return self._get_or_create(name, build, Histogram)

    def as_dict(self) -> dict[str, dict]:
        """Snapshot every instrument, keyed by name (JSON-ready)."""
        return {
            name: inst.as_dict() for name, inst in sorted(self._instruments.items())
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, dict]) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot.

        The inverse of :meth:`as_dict` up to instrument identity -- the
        rebuilt instruments carry the snapshot's values and help strings.
        This is how sweep workers ship their registries across process
        boundaries: ``as_dict`` on the worker side, ``from_snapshot`` (or
        :meth:`merge_snapshot`) on the parent side.
        """
        registry = cls()
        merge_registries(registry, snapshot)
        return registry

    def merge_snapshot(self, snapshot: Mapping[str, dict]) -> "MetricsRegistry":
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        Counters add, gauges take the incoming value, histograms add
        bucket counts (bounds must agree) -- see :func:`merge_registries`.
        Returns ``self`` so merges chain across a worker-result stream.
        """
        merge_registries(self, snapshot)
        return self

    def render_markdown(self) -> str:
        """Render the registry as markdown tables.

        Counters and gauges share one name/value table; each histogram
        gets its own bucket table with count, mean and p50/p95 rows.
        """
        snapshot = self.as_dict()
        scalars = {
            name: entry
            for name, entry in snapshot.items()
            if entry["type"] in ("counter", "gauge")
        }
        lines: list[str] = []
        if scalars:
            lines += ["| metric | type | value |", "|---|---|---|"]
            for name, entry in scalars.items():
                lines.append(
                    f"| `{name}` | {entry['type']} | {entry['value']:,.6g} |"
                )
        for name, entry in snapshot.items():
            if entry["type"] != "histogram":
                continue
            hist = self._instruments[name]
            assert isinstance(hist, Histogram)
            if lines:
                lines.append("")
            lines += [
                f"**`{name}`** -- {entry['count']:,} observations, "
                f"mean {entry['mean']:,.3g}, "
                f"p50 {hist.quantile(0.5):,.3g}, p95 {hist.quantile(0.95):,.3g}, "
                f"p99 {hist.quantile(0.99):,.3g}",
                "",
                "| bucket | count |",
                "|---|---|",
            ]
            labels = [f"<= {b:g}" for b in entry["bounds"]] + [
                f"> {entry['bounds'][-1]:g}"
            ]
            for label, count in zip(labels, entry["counts"], strict=True):
                lines.append(f"| {label} | {count:,} |")
        return "\n".join(lines) if lines else "(no metrics recorded)"


def merge_registries(target: MetricsRegistry, source: Mapping[str, dict]) -> None:
    """Fold an :meth:`MetricsRegistry.as_dict` snapshot into ``target``.

    Counters add, gauges take the source value, histograms require equal
    bounds and add bucket counts -- the natural composition for stats
    gathered by independent workers.
    """
    for name, entry in source.items():
        kind = entry["type"]
        if kind == "counter":
            target.counter(name, entry.get("help", "")).inc(entry["value"])
        elif kind == "gauge":
            target.gauge(name, entry.get("help", "")).set(entry["value"])
        elif kind == "histogram":
            hist = target.histogram(
                name, entry["bounds"], entry.get("help", "")
            )
            if list(hist.bounds) != list(entry["bounds"]):
                raise MetricsError(f"histogram {name!r}: bounds mismatch on merge")
            hist.counts = [a + b for a, b in zip(hist.counts, entry["counts"], strict=True)]
            hist.count += entry["count"]
            hist.total += entry["mean"] * entry["count"]
            if entry["count"]:
                hist.min_value = min(hist.min_value, entry["min"])
                hist.max_value = max(hist.max_value, entry["max"])
            for raw_index, (value, label) in entry.get("exemplars", {}).items():
                index = int(raw_index)
                hist.exemplars[index] = pick_exemplar(
                    hist.exemplars.get(index), (float(value), str(label))
                )
        else:
            raise MetricsError(f"unknown instrument type {kind!r} for {name!r}")
