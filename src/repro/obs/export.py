"""Exporters: Chrome ``trace_event`` JSON and markdown breakdown tables.

The Chrome/Perfetto trace format is the lingua franca of timeline
viewers: a JSON object with a ``traceEvents`` list of slices.  We map
the memory stack onto it as one *process per vault* with one *thread
(track) per bank*, so opening the file in https://ui.perfetto.dev (or
``chrome://tracing``) shows per-bank occupancy slices -- ACTIVATE row
cycles, open-row data beats, refresh and TSV stalls -- exactly the view
the paper's bandwidth argument is about.  Simulated nanoseconds are
exported as trace microseconds (the format's native unit) to keep the
viewers' zoom behaviour sane.

Markdown table helpers render the same data for terminals and reports.
"""

from __future__ import annotations

import json
from typing import IO

from repro.memory3d.config import Memory3DConfig
from repro.memory3d.stats import AccessStats
from repro.obs.events import EventKind, EventTrace
from repro.obs.spans import SpanTimeline
from repro.units import ELEMENT_BYTES

#: Slice names per event kind (short, so Perfetto labels stay readable).
_EVENT_NAMES = {
    int(EventKind.ACTIVATE): "ACTIVATE",
    int(EventKind.ROW_HIT): "HIT",
    int(EventKind.REFRESH_STALL): "REFRESH",
    int(EventKind.TSV_CONTENTION): "TSV_WAIT",
    int(EventKind.BIT_ERROR): "BIT_ERR",
    int(EventKind.WORKER_START): "WORKER_START",
    int(EventKind.WORKER_END): "WORKER_END",
    int(EventKind.QUEUE_WAIT): "QUEUE_WAIT",
    int(EventKind.RETRY): "RETRY",
    int(EventKind.CACHE_HIT): "CACHE_HIT",
    int(EventKind.REQUEST_START): "REQUEST_START",
    int(EventKind.COALESCE_LINK): "COALESCE_LINK",
    int(EventKind.BREAKER_TRANSITION): "BREAKER_TRANSITION",
    int(EventKind.FLIGHT_DUMP): "FLIGHT_DUMP",
}


def event_slice_name(kind: int) -> str:
    """The Perfetto slice label for one event kind."""
    return _EVENT_NAMES.get(kind, f"KIND_{kind}")

#: Process id offset for the span (host-time) track, clear of vault pids.
SPAN_PID = 10_000


def chrome_trace_events(events: EventTrace) -> list[dict]:
    """The ``traceEvents`` list for a recorded simulation.

    One metadata-named process per vault, one thread per bank; every
    event becomes a complete slice (``ph: "X"``) whose ``args`` carry
    the row.  Timestamps/durations are microseconds (simulated ns/1000).
    """
    out: list[dict] = []
    seen_tracks: set[tuple[int, int]] = set()
    for vault, bank in zip(events.vaults, events.banks, strict=True):
        seen_tracks.add((vault, bank))
    for vault in sorted({v for v, _ in seen_tracks}):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": vault,
                "tid": 0,
                "args": {"name": f"vault {vault}"},
            }
        )
    for vault, bank in sorted(seen_tracks):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": vault,
                "tid": bank,
                "args": {"name": f"bank {bank}"},
            }
        )
    for kind, vault, bank, row, ts, dur in zip(
        events.kinds, events.vaults, events.banks, events.rows,
        events.ts_ns, events.dur_ns, strict=True,
    ):
        out.append(
            {
                "name": _EVENT_NAMES[kind],
                "cat": _EVENT_NAMES[kind],
                "ph": "X",
                "pid": vault,
                "tid": bank,
                "ts": ts / 1e3,
                "dur": dur / 1e3,
                "args": {"row": row},
            }
        )
    return out


def chrome_trace(
    events: EventTrace,
    spans: SpanTimeline | None = None,
    metadata: dict | None = None,
) -> dict:
    """A complete Chrome ``trace_event`` JSON object.

    Args:
        events: the recorded memory events (vault/bank tracks).
        spans: optional host-time phase timeline, added as its own
            process (pid :data:`SPAN_PID`).
        metadata: free-form run description stored under ``otherData``.
    """
    trace_events = chrome_trace_events(events)
    if spans is not None and len(spans):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": SPAN_PID,
                "tid": 0,
                "args": {"name": "host phases"},
            }
        )
        trace_events.extend(spans.to_chrome_events(pid=SPAN_PID))
    doc: dict = {"traceEvents": trace_events, "displayTimeUnit": "ns"}
    if metadata:
        doc["otherData"] = {str(k): str(v) for k, v in metadata.items()}
    return doc


def write_chrome_trace(
    target: str | IO[str],
    events: EventTrace,
    spans: SpanTimeline | None = None,
    metadata: dict | None = None,
) -> None:
    """Serialize :func:`chrome_trace` to a path or open text file."""
    doc = chrome_trace(events, spans=spans, metadata=metadata)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
    else:
        json.dump(doc, target)


# ------------------------------------------------------------------- tables
def _markdown(header: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def vault_utilization_table(
    events: EventTrace, elapsed_ns: float, config: Memory3DConfig
) -> str:
    """Per-vault utilization and row-hit-rate breakdown (markdown).

    Utilization is the fraction of each vault's TSV peak actually used
    over the run: ``accesses * element_bytes / (elapsed * vault_peak)``.
    """
    hits = events.per_vault_counts(EventKind.ROW_HIT)
    activations = events.per_vault_counts(EventKind.ACTIVATE)
    hit_rate = events.per_vault_row_hit_rate()
    rows = []
    vault_peak = config.vault_peak_bandwidth
    for vault in range(config.vaults):
        accesses = hits.get(vault, 0) + activations.get(vault, 0)
        util = 0.0
        if elapsed_ns > 0:
            util = (accesses * ELEMENT_BYTES) / (
                elapsed_ns / 1e9 * vault_peak
            )
        rows.append(
            [
                f"{vault}",
                f"{accesses:,}",
                f"{activations.get(vault, 0):,}",
                f"{100 * hit_rate.get(vault, 0.0):.1f}%",
                f"{100 * util:.1f}%",
            ]
        )
    return _markdown(
        ["vault", "accesses", "activations", "row-hit rate", "utilization"], rows
    )


def stats_vault_table(stats: AccessStats, config: Memory3DConfig) -> str:
    """Per-vault busy-time share from plain :class:`AccessStats` (markdown).

    Needs no recorder -- uses the ``per_vault_busy_ns`` the engines
    always collect; ``busy`` is each vault's last-completion watermark
    relative to the run's elapsed time.
    """
    rows = []
    elapsed = stats.elapsed_ns
    for vault in range(config.vaults):
        busy = stats.per_vault_busy_ns.get(vault, 0.0)
        share = busy / elapsed if elapsed > 0 else 0.0
        rows.append([f"{vault}", f"{busy:,.0f}", f"{100 * share:.1f}%"])
    return _markdown(["vault", "busy ns (watermark)", "of elapsed"], rows)


def event_summary_table(events: EventTrace) -> str:
    """Event counts and total stall time as a compact markdown table."""
    counts = events.counts()
    rows = [[name, f"{count:,}"] for name, count in counts.items()]
    rows.append(
        ["refresh stall ns", f"{events.stall_ns(EventKind.REFRESH_STALL):,.1f}"]
    )
    rows.append(
        ["TSV wait ns", f"{events.stall_ns(EventKind.TSV_CONTENTION):,.1f}"]
    )
    return _markdown(["event", "count / total"], rows)
