"""Structured logging: JSONL records with bound correlation context.

A multi-hour sweep (and the planned ``repro serve`` layout-planning
service) needs operational logs that a machine can aggregate: which run
emitted a line, which grid point it was about, which worker process and
attempt produced it.  This module supplies that with zero third-party
dependencies:

* :class:`LogRecord` -- one frozen, JSON-native log line.  The schema
  (:data:`LOG_SCHEMA`, :data:`CONTEXT_KEYS`) is the logging sibling of
  :data:`repro.obs.events.EVENT_REGISTRY`: every record carries a level,
  a logger name, a message, free-form ``fields`` and a *correlation
  context* restricted to the registered keys (``run_id``, ``point_id``,
  ``worker_id``, ``attempt``) so downstream tooling can join logs
  against telemetry spans and sweep documents.
* :class:`StructuredLogger` -- ``bind(**context)`` returns a child
  logger with merged context; ``debug/info/warning/error`` build a
  record and hand it to a pipeline.  Level filtering happens *before*
  record construction, which is what keeps logging-off code at seed
  speed (one integer compare per call site).
* Sinks -- :class:`RingBufferSink` (bounded in-memory tail, served by
  the monitor's ``/logs`` endpoint), :class:`JsonlSink` (on-disk JSONL
  behind the CLI's ``--log-out``) and :class:`ListSink` (worker-side
  capture shipped home inside
  :class:`~repro.obs.telemetry.WorkerTelemetry` payloads).
* A process-global :class:`LogPipeline` managed by
  :func:`configure_logging` / :func:`get_logger` /
  :func:`shutdown_logging` / :func:`reset_logging`.  Shutdown is
  idempotent and registered with ``atexit`` exactly once, so repeated
  CLI invocations in one process (tests, notebooks) never stack
  handlers -- the ``--profile`` + ``--monitor`` compose fix depends on
  this.

Every record carries two timestamps: ``ts_s`` (wall clock, for humans
and cross-host aggregation) and ``perf_s`` (monotonic, process-local).
Worker-process records are aligned into the parent's monotonic domain
by :meth:`repro.obs.telemetry.RunTelemetry.merge_worker` exactly like
spans, via the paired :class:`~repro.obs.telemetry.ClockAnchor`
readings.

Logging is run *metadata*: it never touches a deterministic sweep
document (enforced by tests and ``benchmarks/bench_logging.py``).
"""

from __future__ import annotations

import atexit
import dataclasses
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError

#: Schema tag stamped into every serialized log record.
LOG_SCHEMA = "repro-log/v1"

#: Exact key set of a serialized ``repro-log/v1`` record.  SCHEMA001
#: holds every producer of the tag to this declaration; adding a key
#: means versioning the tag, since JSONL consumers byte-diff records.
LOG_KEYS = frozenset(
    {
        "schema",
        "level",
        "logger",
        "message",
        "ts_s",
        "perf_s",
        "context",
        "fields",
    }
)

#: The registered correlation-context keys (the logging counterpart of
#: the event registry): everything a record can be joined on.
#: ``request_id`` correlates ``repro serve`` request lifecycles;
#: ``trace_id`` joins records to the end-to-end request trace.
CONTEXT_KEYS = (
    "run_id",
    "point_id",
    "worker_id",
    "attempt",
    "request_id",
    "trace_id",
)

#: Level numbers (stdlib-compatible spacing, but no stdlib dependency).
DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

#: Level name -> number, the only names :class:`LogRecord` accepts.
LEVELS: dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "error": ERROR,
}

#: Level number -> canonical name.
LEVEL_NAMES: dict[int, str] = {number: name for name, number in LEVELS.items()}

#: Default bounded ring capacity (records kept for ``/logs`` tails).
DEFAULT_RING_CAPACITY = 1024


class LoggingError(ReproError):
    """Invalid logger configuration or a malformed log record."""


def level_number(level: int | str) -> int:
    """Normalise a level given by name or number to its number."""
    if isinstance(level, str):
        try:
            return LEVELS[level.lower()]
        except KeyError:
            known = ", ".join(LEVELS)
            raise LoggingError(
                f"unknown log level {level!r} (known: {known})"
            ) from None
    if level not in LEVEL_NAMES:
        known = ", ".join(str(n) for n in LEVEL_NAMES)
        raise LoggingError(f"unknown log level {level} (known: {known})")
    return int(level)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# ------------------------------------------------------------------ log record
@dataclass(frozen=True)
class LogRecord:
    """One structured log line (frozen, JSON-native).

    Attributes:
        level: a registered level number (:data:`LEVELS`).
        logger: dotted logger name (``repro.sweep``, ...).
        message: human-readable message (no interpolated identifiers --
            those belong in ``context``/``fields`` where machines can
            read them).
        ts_s: wall-clock seconds at emission.
        perf_s: monotonic (``perf_counter``) seconds at emission;
            process-local until clock-aligned by the telemetry merge.
        context: correlation context, keys restricted to
            :data:`CONTEXT_KEYS`.
        fields: free-form JSON-native annotations.
    """

    level: int
    logger: str
    message: str
    ts_s: float
    perf_s: float
    context: dict[str, Any] = field(default_factory=dict)
    fields: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.level not in LEVEL_NAMES:
            raise LoggingError(f"unregistered log level {self.level}")
        unknown = set(self.context) - set(CONTEXT_KEYS)
        if unknown:
            raise LoggingError(
                f"unregistered context key(s) {sorted(unknown)} "
                f"(registered: {', '.join(CONTEXT_KEYS)})"
            )

    @property
    def level_name(self) -> str:
        """Canonical level name (``"info"``, ...)."""
        return LEVEL_NAMES[self.level]

    def shifted(self, offset_s: float) -> "LogRecord":
        """A copy with ``perf_s`` moved into another clock domain."""
        return dataclasses.replace(self, perf_s=self.perf_s + offset_s)

    def as_dict(self) -> dict[str, Any]:
        """JSON-native form (one JSONL line's payload)."""
        return {
            "schema": LOG_SCHEMA,
            "level": self.level_name,
            "logger": self.logger,
            "message": self.message,
            "ts_s": self.ts_s,
            "perf_s": self.perf_s,
            "context": dict(self.context),
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LogRecord":
        """Rebuild a record, validating it against the schema.

        Raises :class:`LoggingError` on a missing/foreign schema tag,
        an unregistered level or context key, or malformed members.
        """
        if not isinstance(data, dict):
            raise LoggingError("log record must be a mapping")
        if data.get("schema") != LOG_SCHEMA:
            raise LoggingError(
                f"not a log record "
                f"(schema {data.get('schema')!r} != {LOG_SCHEMA!r})"
            )
        try:
            return cls(
                level=level_number(data["level"]),
                logger=str(data["logger"]),
                message=str(data["message"]),
                ts_s=float(data["ts_s"]),
                perf_s=float(data["perf_s"]),
                context=dict(data.get("context", {})),
                fields=dict(data.get("fields", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LoggingError(f"malformed log record ({exc!r})") from exc


def validate_log_line(line: str) -> LogRecord:
    """Parse one JSONL line and validate it against the record schema."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LoggingError(f"log line is not JSON ({exc})") from exc
    return LogRecord.from_dict(payload)


# ----------------------------------------------------------------------- sinks
class LogSink:
    """Where emitted records go.  Subclasses override :meth:`emit`."""

    def emit(self, record: LogRecord) -> None:
        """Accept one record (no-op in the base class)."""

    def close(self) -> None:
        """Release resources (idempotent no-op by default)."""


class ListSink(LogSink):
    """Append records to a plain list (worker capture, tests)."""

    def __init__(self, records: list[LogRecord] | None = None) -> None:
        self.records: list[LogRecord] = records if records is not None else []

    def emit(self, record: LogRecord) -> None:
        """Append the record."""
        self.records.append(record)


class RingBufferSink(LogSink):
    """A bounded in-memory tail of the most recent records.

    Backing store is a ``deque(maxlen=capacity)``: overflow silently
    drops the *oldest* records, so a million-point sweep can log freely
    while the monitor's ``/logs`` endpoint serves a fixed-size window.
    Thread-safe (the sweep runner's outcome loop and the monitor's HTTP
    threads share it).
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise LoggingError(
                f"ring capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._records: deque[LogRecord] = deque(maxlen=self.capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    def emit(self, record: LogRecord) -> None:
        """Append, evicting the oldest record once at capacity."""
        with self._lock:
            if len(self._records) == self.capacity:
                self._dropped += 1
            self._records.append(record)

    def tail(self, n: int | None = None) -> list[LogRecord]:
        """The newest ``n`` records, oldest first (all when ``None``)."""
        with self._lock:
            records = list(self._records)
        if n is None or n >= len(records):
            return records
        return records[len(records) - max(0, int(n)):]

    @property
    def dropped(self) -> int:
        """Records evicted by overflow since construction."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        """Drop everything (tests)."""
        with self._lock:
            self._records.clear()
            self._dropped = 0


class JsonlSink(LogSink):
    """Append records to an on-disk JSONL file (one record per line).

    The file is opened lazily on the first emit (a configured-but-quiet
    run leaves no empty file behind), written line-buffered, and closed
    by :func:`shutdown_logging` / :meth:`close`.  Thread-safe.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: Any = None
        self._lock = threading.Lock()

    def emit(self, record: LogRecord) -> None:
        """Serialize the record as one JSON line."""
        line = json.dumps(record.as_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(  # noqa: SIM115 - held across emits
                    self.path, "a", encoding="utf-8", buffering=1
                )
            self._handle.write(line + "\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# -------------------------------------------------------------------- pipeline
class LogPipeline:
    """A level threshold plus the sinks every accepted record reaches.

    One pipeline serves a whole process; loggers look it up at call
    time, so reconfiguration (``--log-level``/``--log-out``) applies to
    every logger already handed out.
    """

    def __init__(
        self,
        level: int | str = WARNING,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        self.level = level_number(level)
        self.ring = RingBufferSink(ring_capacity)
        self.sinks: list[LogSink] = [self.ring]

    def enabled_for(self, level: int) -> bool:
        """Whether records at ``level`` pass the threshold."""
        return level >= self.level

    def add_sink(self, sink: LogSink) -> LogSink:
        """Attach another sink; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def emit(self, record: LogRecord) -> None:
        """Deliver one record to every sink (level-checked by callers)."""
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            sink.close()


# ------------------------------------------------------------------- loggers
class StructuredLogger:
    """A named logger with bound correlation context.

    Loggers are cheap immutable views: :meth:`bind` returns a child
    carrying merged context, and every emit consults the pipeline's
    level *first*, so disabled levels cost one comparison.

    A logger created by :func:`get_logger` resolves the process-global
    pipeline at each call; a logger given an explicit ``pipeline``
    (worker-side capture) uses only that one.
    """

    def __init__(
        self,
        name: str,
        context: dict[str, Any] | None = None,
        pipeline: LogPipeline | None = None,
    ) -> None:
        self.name = name
        self.context = dict(context or {})
        unknown = set(self.context) - set(CONTEXT_KEYS)
        if unknown:
            raise LoggingError(
                f"unregistered context key(s) {sorted(unknown)} "
                f"(registered: {', '.join(CONTEXT_KEYS)})"
            )
        self._pipeline = pipeline

    def bind(self, **context: Any) -> "StructuredLogger":
        """A child logger with ``context`` merged over the current one."""
        merged = {**self.context, **context}
        return StructuredLogger(self.name, merged, self._pipeline)

    def pipeline(self) -> LogPipeline:
        """The pipeline this logger emits into."""
        return self._pipeline if self._pipeline is not None else _pipeline()

    # --------------------------------------------------------------- emitting
    def log(self, level: int, message: str, **fields: Any) -> None:
        """Emit one record at ``level`` (skipped below the threshold)."""
        pipeline = self.pipeline()
        if not pipeline.enabled_for(level):
            return
        record = LogRecord(
            level=level,
            logger=self.name,
            message=message,
            ts_s=time.time(),
            perf_s=time.perf_counter(),
            context={k: _json_safe(v) for k, v in self.context.items()},
            fields={k: _json_safe(v) for k, v in fields.items()},
        )
        pipeline.emit(record)

    def debug(self, message: str, **fields: Any) -> None:
        """Emit at DEBUG."""
        self.log(DEBUG, message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        """Emit at INFO."""
        self.log(INFO, message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        """Emit at WARNING."""
        self.log(WARNING, message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        """Emit at ERROR."""
        self.log(ERROR, message, **fields)


# ------------------------------------------------------------- global pipeline
#: The process-global pipeline.  Default threshold is WARNING so an
#: unconfigured library import logs nothing on the hot path.
_GLOBAL: LogPipeline = LogPipeline()

_ATEXIT_REGISTERED = False
_STATE_LOCK = threading.Lock()


def _pipeline() -> LogPipeline:
    return _GLOBAL


def configure_logging(
    level: int | str = INFO,
    log_path: str | Path | None = None,
    ring_capacity: int = DEFAULT_RING_CAPACITY,
) -> LogPipeline:
    """(Re)configure the process-global pipeline.

    Replaces the global pipeline with a fresh one at ``level`` with a
    ``ring_capacity``-bounded ring buffer, plus a :class:`JsonlSink` on
    ``log_path`` when given.  The previous pipeline's file sinks are
    closed first, and the shutdown hook is registered with ``atexit``
    at most once per process -- calling this from every CLI invocation
    (or test) never stacks handlers.
    """
    global _GLOBAL, _ATEXIT_REGISTERED
    with _STATE_LOCK:
        _GLOBAL.close()
        pipeline = LogPipeline(level=level, ring_capacity=ring_capacity)
        if log_path is not None:
            pipeline.add_sink(JsonlSink(log_path))
        _GLOBAL = pipeline
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_logging)
            _ATEXIT_REGISTERED = True
        return pipeline


def get_logger(name: str, **context: Any) -> StructuredLogger:
    """A logger on the process-global pipeline, optionally pre-bound."""
    return StructuredLogger(name, context or None)


def global_pipeline() -> LogPipeline:
    """The process-global pipeline (telemetry merge forwards into it)."""
    return _GLOBAL


def global_ring() -> RingBufferSink:
    """The global pipeline's ring buffer (the ``/logs`` tail source)."""
    return _GLOBAL.ring


def shutdown_logging() -> None:
    """Flush and close the global pipeline's sinks (idempotent).

    Safe to call any number of times and from ``atexit``; the pipeline
    object survives (records emitted afterwards reopen file sinks),
    which keeps long-lived test processes working after a CLI run.
    """
    with _STATE_LOCK:
        _GLOBAL.close()


def reset_logging() -> None:
    """Restore the default unconfigured pipeline (tests)."""
    global _GLOBAL
    with _STATE_LOCK:
        _GLOBAL.close()
        _GLOBAL = LogPipeline()
