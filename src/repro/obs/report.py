"""A self-contained static HTML run report.

``python -m repro report --html`` renders one file a reviewer can open
with no server, no JavaScript framework and no network access: inline
CSS, inline SVG charts, everything computed from this repository's own
models and artifacts.  Sections:

* **Modelled system** -- the resolved 3D-memory configuration;
* **Per-vault utilization** -- the event-recorder breakdown for the
  baseline (row-major) and optimized (block-DDL) column phases;
* **Sweep telemetry** -- when a merged :class:`RunTelemetry` is
  supplied, its summary, an SVG timeline of runner/point/worker tracks
  and the merged metrics registry;
* **Fault degradation** -- the :func:`repro.faults.report.degradation_rows`
  table plus the DDL-advantage list;
* **Bench trajectory** -- sparklines over a history of ``BENCH_*.json``
  artifacts (pass every snapshot you have; one file still renders).

Everything accepts precomputed inputs so tests and the CLI can assemble
reports at any fidelity without re-simulating.
"""

from __future__ import annotations

import html
import json
from collections.abc import Iterable, Sequence
from typing import Any

from repro.core.config import SystemConfig
from repro.faults.report import degradation_report, degradation_rows
from repro.layouts import (
    BlockDDLLayout,
    RowMajorLayout,
    optimal_block_geometry,
)
from repro.memory3d.memory import Memory3D
from repro.obs.events import EventTrace
from repro.obs.export import vault_utilization_table
from repro.obs.telemetry import RunTelemetry
from repro.trace.generators import block_column_read_trace, column_walk_trace

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #30507a; padding-bottom: .3rem; }
h2 { color: #30507a; margin-top: 2rem; }
table { border-collapse: collapse; margin: .75rem 0; }
th, td { border: 1px solid #c5cede; padding: .3rem .6rem; text-align: right; }
th { background: #eef2f8; }
td:first-child, th:first-child { text-align: left; }
pre { background: #f4f6fa; padding: .75rem; overflow-x: auto; }
svg { background: #fbfcfe; border: 1px solid #c5cede; }
.note { color: #5a6478; font-size: .9em; }
.spark { vertical-align: middle; margin-right: .5rem; }
"""

#: Track colours for the timeline SVG, cycled per process.
_TRACK_COLORS = ("#30507a", "#b0562c", "#3a7a4a", "#7a3a6e", "#807020")


# ------------------------------------------------------------- tiny renderers
def markdown_table_html(markdown: str) -> str:
    """Convert a pipe-style markdown table to an HTML ``<table>``.

    Only the subset our renderers emit (header row, ``---`` separator,
    body rows); inline backticks become ``<code>``.
    """
    rows = [
        [cell.strip() for cell in line.strip().strip("|").split("|")]
        for line in markdown.strip().splitlines()
        if line.strip().startswith("|")
    ]
    if len(rows) < 2:
        return f"<pre>{html.escape(markdown)}</pre>"

    def cell_html(text: str) -> str:
        escaped = html.escape(text)
        while "`" in escaped:
            before, _, rest = escaped.partition("`")
            code, _, after = rest.partition("`")
            escaped = f"{before}<code>{code}</code>{after}"
        return escaped

    out = ["<table>", "<tr>"]
    out += [f"<th>{cell_html(cell)}</th>" for cell in rows[0]]
    out.append("</tr>")
    for row in rows[2:]:
        out.append("<tr>")
        out += [f"<td>{cell_html(cell)}</td>" for cell in row]
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def svg_sparkline(
    values: Sequence[float], width: int = 120, height: int = 24
) -> str:
    """An inline SVG sparkline of a numeric series."""
    data = [float(v) for v in values]
    if not data:
        return ""
    lo, hi = min(data), max(data)
    span = (hi - lo) or 1.0
    pad = 2.0
    if len(data) == 1:
        points = [(width / 2, height / 2)]
    else:
        step = (width - 2 * pad) / (len(data) - 1)
        points = [
            (
                pad + index * step,
                pad + (height - 2 * pad) * (1 - (value - lo) / span),
            )
            for index, value in enumerate(data)
        ]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    last_x, last_y = points[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{path}" fill="none" stroke="#30507a" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
        f'fill="#b0562c"/></svg>'
    )


def svg_timeline(telemetry: RunTelemetry, width: int = 880) -> str:
    """An SVG swimlane view of a merged run trace.

    One lane per Chrome track (runner, each sweep point, each worker),
    complete slices as bars, instants as ticks -- a static stand-in for
    opening the full Perfetto trace.
    """
    doc = telemetry.chrome_trace()
    names: dict[tuple[int, int], str] = {}
    process: dict[int, str] = {}
    slices: list[dict] = []
    for event in doc["traceEvents"]:
        if event.get("ph") == "M":
            if event["name"] == "process_name":
                process[event["pid"]] = event["args"]["name"]
            else:
                names[(event["pid"], event["tid"])] = event["args"]["name"]
        elif event.get("ph") in ("X", "i"):
            slices.append(event)
    if not slices:
        return '<p class="note">(no telemetry recorded)</p>'
    tracks: list[tuple[int, int]] = sorted(
        {(event["pid"], event["tid"]) for event in slices}
    )
    end_us = max(
        event["ts"] + event.get("dur", 0.0) for event in slices
    ) or 1.0
    lane_h, pad, label_w = 20, 4, 150
    height = len(tracks) * lane_h + 2 * pad + 16
    scale = (width - label_w - 2 * pad) / end_us
    row_of = {track: index for index, track in enumerate(tracks)}
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    color_of: dict[int, str] = {}
    for pid, tid in tracks:
        color_of.setdefault(pid, _TRACK_COLORS[len(color_of) % len(_TRACK_COLORS)])
        y = pad + row_of[(pid, tid)] * lane_h
        label = names.get(
            (pid, tid), process.get(pid, f"pid {pid}")
        )
        if (pid, tid) not in names and tid == 0:
            label = process.get(pid, f"pid {pid}")
        parts.append(
            f'<text x="{pad}" y="{y + lane_h - 7}" font-size="10" '
            f'fill="#1a1a2e">{html.escape(str(label))}</text>'
        )
    for event in slices:
        track = (event["pid"], event["tid"])
        y = pad + row_of[track] * lane_h
        x = label_w + pad + event["ts"] * scale
        color = color_of[event["pid"]]
        title = html.escape(str(event["name"]))
        if event["ph"] == "X":
            bar_width = max(1.0, event.get("dur", 0.0) * scale)
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 2}" width="{bar_width:.1f}" '
                f'height="{lane_h - 6}" fill="{color}" fill-opacity="0.75">'
                f"<title>{title}</title></rect>"
            )
        else:
            parts.append(
                f'<line x1="{x:.1f}" y1="{y + 1}" x2="{x:.1f}" '
                f'y2="{y + lane_h - 3}" stroke="{color}" stroke-width="2">'
                f"<title>{title}</title></line>"
            )
    axis_y = len(tracks) * lane_h + pad + 12
    parts.append(
        f'<text x="{label_w + pad}" y="{axis_y}" font-size="10" '
        f'fill="#5a6478">0</text>'
    )
    parts.append(
        f'<text x="{width - pad - 60}" y="{axis_y}" font-size="10" '
        f'fill="#5a6478">{end_us / 1e3:.1f} ms</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


# ------------------------------------------------------------- bench history
def load_bench_history(paths: Iterable[str]) -> dict[str, list[dict]]:
    """Load ``BENCH_*.json`` artifacts, grouped by benchmark name.

    ``paths`` should be ordered oldest to newest; files that fail to
    parse or lack the artifact shape are skipped (a history viewer must
    not die on one corrupt snapshot).
    """
    history: dict[str, list[dict]] = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        name = document.get("benchmark")
        metrics = document.get("metrics")
        if not isinstance(name, str) or not isinstance(metrics, dict):
            continue
        history.setdefault(name, []).append(document)
    return history


def _bench_section(history: dict[str, list[dict]]) -> list[str]:
    parts: list[str] = ["<h2>Bench trajectory</h2>"]
    if not history:
        parts.append(
            '<p class="note">(no BENCH_*.json artifacts supplied)</p>'
        )
        return parts
    for name in sorted(history):
        snapshots = history[name]
        parts.append(f"<h3><code>BENCH_{html.escape(name)}</code> "
                     f"({len(snapshots)} snapshot(s))</h3>")
        metric_names = sorted(
            {
                metric
                for snapshot in snapshots
                for metric, value in snapshot["metrics"].items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
        )
        rows = ["<table><tr><th>metric</th><th>trend</th>"
                "<th>latest</th></tr>"]
        for metric in metric_names:
            series = [
                float(snapshot["metrics"][metric])
                for snapshot in snapshots
                if isinstance(snapshot["metrics"].get(metric), (int, float))
            ]
            if not series:
                continue
            rows.append(
                f"<tr><td><code>{html.escape(metric)}</code></td>"
                f"<td>{svg_sparkline(series)}</td>"
                f"<td>{series[-1]:,.4g}</td></tr>"
            )
        rows.append("</table>")
        parts.append("".join(rows))
    return parts


# --------------------------------------------------------------- the report
def _vault_sections(
    config: SystemConfig, n: int, max_requests: int
) -> list[str]:
    geometry = optimal_block_geometry(config.memory, n)
    cols = 2 * geometry.width
    recorder = EventTrace()
    memory = Memory3D(config.memory, recorder=recorder)

    base_trace = column_walk_trace(RowMajorLayout(n, n), cols=range(cols))
    base_trace = base_trace.head(min(len(base_trace), max_requests))
    base_stats = memory.simulate(base_trace, "in_order")
    base_table = vault_utilization_table(
        recorder, base_stats.elapsed_ns, config.memory
    )

    recorder.clear()
    layout = BlockDDLLayout(n, n, geometry.width, geometry.height)
    streams = min(config.column_streams, layout.blocks_per_row_band)
    ddl_trace = block_column_read_trace(
        layout, n_streams=streams, block_cols=range(streams)
    )
    ddl_trace = ddl_trace.head(min(len(ddl_trace), max_requests))
    ddl_stats = memory.simulate(ddl_trace, "per_vault")
    ddl_table = vault_utilization_table(
        recorder, ddl_stats.elapsed_ns, config.memory
    )

    return [
        f"<h2>Per-vault utilization &mdash; column phase (N={n})</h2>",
        "<p>Baseline (row-major, in-order): every column access opens a "
        "new row and the stream visits vaults one at a time.</p>",
        markdown_table_html(base_table),
        f"<p>Optimized (DDL, {streams} per-vault streams): block columns "
        "keep rows open and spread load across vaults.</p>",
        markdown_table_html(ddl_table),
    ]


def _fault_section(
    config: SystemConfig, n: int, max_requests: int, seed: int
) -> list[str]:
    report = degradation_report(
        config=config, n=n, max_requests=max_requests, seed=seed
    )
    header, rows = degradation_rows(report)
    table = ["<table><tr>"]
    table += [f"<th>{html.escape(cell)}</th>" for cell in header]
    table.append("</tr>")
    for row in rows:
        table.append("<tr>")
        table += [f"<td>{html.escape(cell)}</td>" for cell in row]
        table.append("</tr>")
    table.append("</table>")
    advantage = "".join(
        f"<li>{html.escape(name)}: <strong>{ratio:.1f}x</strong></li>"
        for name, ratio in report["advantage"].items()
    )
    return [
        f"<h2>Degradation under injected faults (N={n})</h2>",
        "<p>Column-phase bandwidth per layout, healthy and under each "
        "fault class; parenthesized: fraction of the layout's own "
        "healthy bandwidth that survives.</p>",
        "".join(table),
        "<p>DDL bandwidth advantage over row-major (ratio, &gt;1 means "
        "the blocked layout still wins):</p>",
        f"<ul>{advantage}</ul>",
    ]


def build_run_report(
    config: SystemConfig | None = None,
    n: int = 512,
    max_requests: int = 32_768,
    telemetry: RunTelemetry | None = None,
    bench_paths: Iterable[str] = (),
    include_faults: bool = True,
    seed: int = 0,
    title: str = "repro run report",
    generated: str | None = None,
) -> str:
    """Assemble the self-contained HTML run report.

    Args:
        config: the modelled system (default: paper-calibrated).
        n: matrix size for the utilization / degradation sections.
        max_requests: simulated-request cap per section run.
        telemetry: a merged sweep :class:`RunTelemetry` to embed as the
            timeline section (omit to skip the section).
        bench_paths: ``BENCH_*.json`` artifact paths, oldest first.
        include_faults: render the degradation section (the most
            expensive section; reports for quick smoke runs skip it).
        seed: fault-plan seed for the degradation section.
        title: document title.
        generated: optional human-readable provenance line (timestamp,
            host, commit) -- caller-supplied so report content stays a
            pure function of its inputs.
    """
    config = config or SystemConfig()
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    if generated:
        parts.append(f'<p class="note">{html.escape(generated)}</p>')

    parts += [
        "<h2>Modelled system</h2>",
        f"<pre>{html.escape(config.memory.describe())}</pre>",
    ]
    parts += _vault_sections(config, n, max_requests)

    if telemetry is not None:
        parts += [
            "<h2>Sweep telemetry</h2>",
            f'<p class="note">{html.escape(telemetry.summary())}</p>',
            svg_timeline(telemetry),
        ]
        if len(telemetry.registry):
            parts.append(
                "<pre>"
                + html.escape(telemetry.registry.render_markdown())
                + "</pre>"
            )

    if include_faults:
        parts += _fault_section(config, n, max_requests, seed)

    parts += _bench_section(load_bench_history(bench_paths))
    parts.append("</body></html>")
    return "\n".join(parts)


def write_run_report(path: str, **kwargs: Any) -> None:
    """Build :func:`build_run_report` and write it to ``path``."""
    text = build_run_report(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
