"""Sweep execution: serial fallback, process-pool fan-out, cache reuse.

The runner walks a grid's points in their deterministic order and, for
each point, either replays a cached result or simulates the column
phase via :func:`repro.core.simulate.simulate_column_phase`.  Uncached
points fan out across worker processes
(:class:`concurrent.futures.ProcessPoolExecutor`); ``jobs=1`` runs the
identical code path inline, so parallelism can never change results.

Each worker returns its point result together with a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot; the parent merges
the snapshots (counters add, histograms combine bucket-wise) into one
run-level registry.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.core.config import SystemConfig
from repro.core.simulate import simulate_column_phase
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.serialization import system_from_dict, system_to_dict, system_with_overrides
from repro.sweep.cache import ResultCache
from repro.sweep.grid import SweepGrid, SweepPoint
from repro.sweep.results import SweepResult

#: Default cap on exactly-simulated requests per point.
DEFAULT_SWEEP_REQUESTS = 65_536

#: Bucket bounds for the per-run utilization histogram (% of peak).
_UTILIZATION_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: ``<= 0`` means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def validate_grid(grid: SweepGrid, config: SystemConfig) -> None:
    """Fail fast on points the simulator would reject later.

    Checks every ``"ddl"`` point's block shape against the row-buffer
    capacity and the matrix dimensions, so a bad grid dies with one
    clear error instead of mid-sweep inside a worker.
    """
    s = config.memory.row_elements
    for point in grid.points():
        if point.layout != "ddl" or point.height is None:
            continue
        if s % point.height:
            raise ConfigError(
                f"grid point N={point.n}: height {point.height} does not "
                f"divide the {s}-element row buffer"
            )
        width = s // point.height
        if point.n % point.height or point.n % width:
            raise ConfigError(
                f"grid point N={point.n}: block {width}x{point.height} does "
                f"not tile an {point.n}x{point.n} matrix"
            )


def point_result(
    point: SweepPoint, config: SystemConfig, max_requests: int
) -> dict[str, Any]:
    """Simulate one sweep point and package the result as a plain dict.

    The dict is JSON-native (string keys, scalars only) so it survives
    the cache round-trip byte-for-byte -- a replayed point is
    indistinguishable from a fresh one.
    """
    run = simulate_column_phase(
        config,
        point.n,
        layout=point.layout,
        height=point.height,
        whole_blocks=point.whole_blocks,
        max_requests=max_requests,
    )
    metrics = run.metrics
    stats = metrics.stats
    assert stats is not None  # every column-phase path simulates a trace
    peak = config.peak_bandwidth
    return {
        "n": point.n,
        "layout": point.layout,
        "config": point.config_label,
        "height": run.height,
        "width": run.width,
        "discipline": run.discipline,
        "whole_blocks": point.whole_blocks,
        "throughput_gbps": metrics.throughput_gbps,
        "throughput_gbitps": metrics.throughput_gbitps,
        "utilization": metrics.utilization(peak),
        "bound": metrics.bound,
        "memory_time_ns": metrics.memory_time_ns,
        "kernel_time_ns": metrics.kernel_time_ns,
        "first_output_latency_ns": metrics.first_output_latency_ns,
        "memory_bandwidth_gbps": stats.bandwidth_gbps,
        "memory_utilization": stats.utilization(peak),
        "requests": stats.requests,
        "row_activations": stats.row_activations,
        "row_hits": stats.row_hits,
        "row_hit_rate": stats.row_hit_rate,
    }


def _record_point_metrics(registry: MetricsRegistry, result: dict[str, Any]) -> None:
    registry.counter("sweep.points", help="points simulated").inc()
    registry.counter("sweep.requests", help="extrapolated requests across points").inc(
        result["requests"]
    )
    registry.counter("sweep.row_activations", help="row activations across points").inc(
        result["row_activations"]
    )
    registry.counter("sweep.row_hits", help="open-row hits across points").inc(
        result["row_hits"]
    )
    registry.histogram(
        "sweep.memory_utilization_pct",
        _UTILIZATION_BOUNDS,
        help="per-point memory bandwidth as % of peak",
    ).observe(100.0 * result["memory_utilization"])


def _execute_task(task: dict[str, Any]) -> dict[str, Any]:
    """Worker body: simulate one point, return result + metrics snapshot.

    Module-level (picklable) and fed only JSON-native payloads, so it
    runs identically inline, under ``fork`` and under ``spawn``.
    """
    config = system_from_dict(task["config"])
    point = SweepPoint(**task["point"])
    registry = MetricsRegistry()
    result = point_result(point, config, task["max_requests"])
    _record_point_metrics(registry, result)
    return {"index": task["index"], "result": result, "metrics": registry.as_dict()}


def run_sweep(
    grid: SweepGrid,
    config: SystemConfig | None = None,
    max_requests: int = DEFAULT_SWEEP_REQUESTS,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Execute every point of ``grid`` and return the merged result.

    Args:
        grid: the design space to sweep.
        config: base system configuration; each grid config variant's
            overrides are merged on top of it.
        max_requests: exactly-simulated request budget per point.
        jobs: worker processes; ``1`` runs inline (deterministic serial
            fallback), ``<= 0`` uses one worker per CPU.
        cache: optional on-disk result cache; hits skip simulation,
            misses are stored after simulation.
    """
    config = config or SystemConfig()
    if max_requests <= 0:
        raise ConfigError(f"max_requests must be positive, got {max_requests}")
    validate_grid(grid, config)
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()

    config_dicts = {
        variant.label: system_to_dict(
            system_with_overrides(config, dict(variant.overrides))
        )
        for variant in grid.configs
    }
    points = grid.points()
    results: list[dict[str, Any] | None] = [None] * len(points)
    registry = MetricsRegistry()
    tasks: list[dict[str, Any]] = []
    for index, point in enumerate(points):
        payload = {
            "point": point.as_dict(),
            "config": config_dicts[point.config_label],
            "max_requests": max_requests,
        }
        key = None
        if cache is not None:
            key = cache.key_for(payload)
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                continue
        tasks.append({"index": index, "key": key, **payload})

    if tasks:
        if jobs == 1 or len(tasks) == 1:
            outcomes = [_execute_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
                outcomes = list(pool.map(_execute_task, tasks))
        for task, outcome in zip(tasks, outcomes):
            results[outcome["index"]] = outcome["result"]
            registry.merge_snapshot(outcome["metrics"])
            if cache is not None:
                payload = {
                    "point": task["point"],
                    "config": task["config"],
                    "max_requests": task["max_requests"],
                }
                cache.put(task["key"], payload, outcome["result"])

    registry.counter("sweep.cache.hits", help="points replayed from cache").inc(
        len(points) - len(tasks)
    )
    registry.counter("sweep.cache.misses", help="points simulated fresh").inc(
        len(tasks)
    )
    final: list[dict[str, Any]] = []
    for index, entry in enumerate(results):
        assert entry is not None, f"point {index} produced no result"
        final.append(entry)
    meta = {
        "jobs": jobs,
        "simulated": len(tasks),
        "cached": len(points) - len(tasks),
        "wall_s": time.perf_counter() - started,
        "cache": cache.stats.as_dict() if cache is not None else None,
    }
    return SweepResult(
        grid=grid,
        max_requests=max_requests,
        results=final,
        registry=registry,
        meta=meta,
    )
