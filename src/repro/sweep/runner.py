"""Sweep execution: serial fallback, process-pool fan-out, cache reuse.

The runner walks a grid's points in their deterministic order and, for
each point, either replays a cached result or simulates the column
phase via :func:`repro.core.simulate.simulate_column_phase`.  Uncached
points fan out across worker processes
(:class:`concurrent.futures.ProcessPoolExecutor`); ``jobs=1`` runs the
identical code path inline, so parallelism can never change results.

Each worker returns its point result together with a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot; the parent merges
the snapshots (counters add, histograms combine bucket-wise) in grid
order into one run-level registry.

Execution is *resilient*: a worker exception is quarantined as a
structured record in the result's ``failures`` section instead of
aborting the grid.  A :class:`~repro.sweep.resilience.RetryPolicy`
upgrades every point to killable per-attempt child processes with
timeouts and deterministic exponential backoff; a checkpoint path makes
the runner snapshot completed points periodically so ``resume=True``
replays them after an interruption.  See :mod:`repro.sweep.resilience`
and ``docs/sweep.md``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from collections.abc import Callable, Iterator
from typing import Any

from repro.core.config import SystemConfig
from repro.core.simulate import simulate_column_phase
from repro.errors import ConfigError
from repro.obs.events import EV_CACHE_HIT, EV_RETRY, EV_WORKER_END
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import SweepStatus
from repro.obs.spans import span_or_null
from repro.obs.telemetry import RunTelemetry, TraceContext, WorkerTelemetry
from repro.serialization import system_from_dict, system_to_dict, system_with_overrides
from repro.sweep.cache import CACHE_VERSION, ResultCache
from repro.sweep.grid import SweepGrid, SweepPoint
from repro.sweep.resilience import (
    QuarantineReason,
    RetryPolicy,
    SweepCheckpoint,
    WorkerChaos,
    apply_chaos,
    failure_record,
    run_attempt,
)
from repro.sweep.results import SweepResult

#: Default cap on exactly-simulated requests per point.
DEFAULT_SWEEP_REQUESTS = 65_536

#: Completed points between checkpoint snapshots.
DEFAULT_CHECKPOINT_EVERY = 8

#: Bucket bounds for the per-run utilization histogram (% of peak).
_UTILIZATION_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: ``<= 0`` means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def validate_grid(grid: SweepGrid, config: SystemConfig) -> None:
    """Fail fast on points the simulator would reject later.

    Checks every ``"ddl"`` point's block shape against the row-buffer
    capacity and the matrix dimensions, so a bad grid dies with one
    clear error instead of mid-sweep inside a worker.
    """
    s = config.memory.row_elements
    for point in grid.points():
        if point.layout != "ddl" or point.height is None:
            continue
        if s % point.height:
            raise ConfigError(
                f"grid point N={point.n}: height {point.height} does not "
                f"divide the {s}-element row buffer"
            )
        width = s // point.height
        if point.n % point.height or point.n % width:
            raise ConfigError(
                f"grid point N={point.n}: block {width}x{point.height} does "
                f"not tile an {point.n}x{point.n} matrix"
            )


def point_result(
    point: SweepPoint,
    config: SystemConfig,
    max_requests: int,
    engine: str = "vector",
) -> dict[str, Any]:
    """Simulate one sweep point and package the result as a plain dict.

    The dict is JSON-native (string keys, scalars only) so it survives
    the cache round-trip byte-for-byte -- a replayed point is
    indistinguishable from a fresh one.  ``engine`` picks the timing
    engine; the two are stat-for-stat equivalent (CI's
    ``engine-equivalence`` gate), so it changes wall-clock only, never
    the result dict.
    """
    run = simulate_column_phase(
        config,
        point.n,
        layout=point.layout,
        height=point.height,
        whole_blocks=point.whole_blocks,
        max_requests=max_requests,
        engine=engine,
    )
    metrics = run.metrics
    stats = metrics.stats
    assert stats is not None  # every column-phase path simulates a trace
    peak = config.peak_bandwidth
    return {
        "n": point.n,
        "layout": point.layout,
        "config": point.config_label,
        "height": run.height,
        "width": run.width,
        "discipline": run.discipline,
        "whole_blocks": point.whole_blocks,
        "throughput_gbps": metrics.throughput_gbps,
        "throughput_gbitps": metrics.throughput_gbitps,
        "utilization": metrics.utilization(peak),
        "bound": metrics.bound,
        "memory_time_ns": metrics.memory_time_ns,
        "kernel_time_ns": metrics.kernel_time_ns,
        "first_output_latency_ns": metrics.first_output_latency_ns,
        "memory_bandwidth_gbps": stats.bandwidth_gbps,
        "memory_utilization": stats.utilization(peak),
        "requests": stats.requests,
        "row_activations": stats.row_activations,
        "row_hits": stats.row_hits,
        "row_hit_rate": stats.row_hit_rate,
    }


def _record_point_metrics(registry: MetricsRegistry, result: dict[str, Any]) -> None:
    registry.counter("sweep.points", help="points simulated").inc()
    registry.counter("sweep.requests", help="extrapolated requests across points").inc(
        result["requests"]
    )
    registry.counter("sweep.row_activations", help="row activations across points").inc(
        result["row_activations"]
    )
    registry.counter("sweep.row_hits", help="open-row hits across points").inc(
        result["row_hits"]
    )
    registry.histogram(
        "sweep.memory_utilization_pct",
        _UTILIZATION_BOUNDS,
        help="per-point memory bandwidth as % of peak",
    ).observe(100.0 * result["memory_utilization"])


def _execute_task(task: dict[str, Any]) -> dict[str, Any]:
    """Worker body: simulate one point, return result + metrics snapshot.

    Module-level (picklable) and fed only JSON-native payloads, so it
    runs identically inline, under ``fork`` and under ``spawn``.  An
    optional ``chaos`` member (see
    :class:`~repro.sweep.resilience.WorkerChaos`) makes the attempt
    misbehave for executor testing.

    When the task carries a ``telemetry`` trace context (see
    :class:`~repro.obs.telemetry.TraceContext`) the worker records a
    local span timeline around the simulation and ships the serialized
    :class:`~repro.obs.telemetry.WorkerTelemetry` payload back on the
    outcome; without it the body is exactly the pre-telemetry code path.
    """
    chaos = task.get("chaos")
    if chaos:
        apply_chaos(chaos, task["index"], task.get("attempt", 1))
    ctx_data = task.get("telemetry")
    tracectx = task.get("tracectx")
    trace_id = (
        str(tracectx["trace_id"])
        if isinstance(tracectx, dict) and tracectx.get("trace_id")
        else None
    )
    trace_meta = {"trace_id": trace_id} if trace_id else {}
    worker_tel: WorkerTelemetry | None = None
    if ctx_data:
        ctx = TraceContext.from_dict(ctx_data)
        if task.get("attempt", 1) != ctx.attempt:
            ctx = TraceContext(
                run_id=ctx.run_id,
                point_id=ctx.point_id,
                attempt=task.get("attempt", 1),
            )
        worker_tel = WorkerTelemetry.start(ctx)
    config = system_from_dict(task["config"])
    point = SweepPoint(**task["point"])
    registry = MetricsRegistry()
    engine = task.get("engine", "vector")
    if worker_tel is not None:
        with worker_tel.timeline.span(
            "point",
            n=point.n,
            layout=point.layout,
            config=point.config_label,
            attempt=task.get("attempt", 1),
            **trace_meta,
        ):
            with worker_tel.timeline.span("simulate"):
                result = point_result(
                    point, config, task["max_requests"], engine=engine
                )
    else:
        result = point_result(point, config, task["max_requests"], engine=engine)
    _record_point_metrics(registry, result)
    outcome = {
        "index": task["index"],
        "result": result,
        "metrics": registry.as_dict(),
    }
    if worker_tel is not None:
        worker_tel.record_event(EV_WORKER_END, point=task["index"], **trace_meta)
        worker_tel.logger(**trace_meta).debug(
            "point simulated",
            n=result["n"],
            layout=result["layout"],
            config=result["config"],
            throughput_gbps=result["throughput_gbps"],
        )
        outcome["telemetry"] = worker_tel.as_dict()
    return outcome


# -------------------------------------------------------------- outcome plumbing
def _attempt_point(
    task: dict[str, Any],
    policy: RetryPolicy,
    chaos: WorkerChaos | None,
) -> dict[str, Any]:
    """Run one point under the retry policy in killable child processes.

    Returns ``{"status": "ok", "outcome": ..., "retries": n}`` or
    ``{"status": "failed", "failure": ..., "retries": n}``; both carry
    an ``attempts_log`` of ``{attempt, status, duration_s}`` records the
    runner turns into RETRY telemetry events.
    """
    index = task["index"]
    last_error = "SweepExecutionError"
    last_message = "no attempt ran"
    last_reason = QuarantineReason.EXCEPTION
    attempts_log: list[dict[str, Any]] = []
    for attempt in range(1, policy.max_attempts + 1):
        payload = dict(task)
        payload["attempt"] = attempt
        if chaos is not None:
            payload["chaos"] = chaos.as_dict()
        status = run_attempt(payload, policy.timeout_s)
        attempts_log.append(
            {
                "attempt": attempt,
                "status": status["status"],
                "duration_s": status.get("duration_s", 0.0),
            }
        )
        if status["status"] == "ok":
            return {
                "status": "ok",
                "outcome": status["outcome"],
                "retries": attempt - 1,
                "attempts_log": attempts_log,
            }
        if status["status"] == "timeout":
            last_error = "TimeoutError"
            last_message = (
                f"attempt exceeded the {policy.timeout_s}s budget and was killed"
            )
            last_reason = QuarantineReason.TIMEOUT
        elif status["status"] == "crashed":
            last_error = "WorkerCrash"
            last_message = (
                f"worker died without reporting (exit code {status.get('exitcode')})"
            )
            last_reason = QuarantineReason.WORKER_CRASH
        else:
            last_error = status.get("error", "Exception")
            last_message = status.get("message", "")
            last_reason = QuarantineReason.EXCEPTION
        if attempt < policy.max_attempts:
            time.sleep(policy.backoff_for(index, attempt))
    failure = failure_record(
        index=index,
        point=task["point"],
        error=last_error,
        message=last_message,
        attempts=policy.max_attempts,
        timed_out=last_reason is QuarantineReason.TIMEOUT,
        reason=last_reason,
    )
    return {
        "status": "failed",
        "failure": failure,
        "retries": policy.retries,
        "attempts_log": attempts_log,
    }


def _record_retry_events(
    run_tel: RunTelemetry, entry: dict[str, Any]
) -> None:
    """Turn one outcome's failed attempts into RETRY telemetry events."""
    if entry["status"] == "ok":
        index = entry["outcome"]["index"]
    else:
        index = entry["failure"]["index"]
    for record in entry.get("attempts_log", []):
        if record["status"] == "ok":
            continue
        run_tel.record_event(
            EV_RETRY,
            point=index,
            attempt=record["attempt"],
            status=record["status"],
            duration_s=record["duration_s"],
        )


def _iter_outcomes_fast(
    tasks: list[dict[str, Any]], jobs: int
) -> Iterator[dict[str, Any]]:
    """Plain execution: inline or process pool, exceptions quarantined."""

    def outcome_of(task: dict[str, Any], call: Callable[[], Any]) -> dict[str, Any]:
        try:
            return {"status": "ok", "outcome": call(), "retries": 0}
        except Exception as exc:  # noqa: BLE001 - quarantine, never abort
            return {
                "status": "failed",
                "failure": failure_record(
                    index=task["index"],
                    point=task["point"],
                    error=type(exc).__name__,
                    message=str(exc),
                    attempts=1,
                ),
                "retries": 0,
            }

    if jobs == 1 or len(tasks) == 1:
        for task in tasks:
            yield outcome_of(task, lambda task=task: _execute_task(task))
        return
    # Workers are forked before this module's thread pool exists (the
    # resilient path uses _attempt_point's fresh children instead), and
    # the worker body re-imports everything it touches; spawn would add
    # a full interpreter+numpy start per worker for no safety gain.
    # repro: ignore[CONC003]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures: dict[Future[Any], dict[str, Any]] = {
            pool.submit(_execute_task, task): task for task in tasks
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task = futures[future]
                yield outcome_of(task, future.result)


def _iter_outcomes_resilient(
    tasks: list[dict[str, Any]],
    jobs: int,
    policy: RetryPolicy,
    chaos: WorkerChaos | None,
) -> Iterator[dict[str, Any]]:
    """Isolated-attempt execution: worker threads drive child processes."""
    if jobs == 1 or len(tasks) == 1:
        for task in tasks:
            yield _attempt_point(task, policy, chaos)
        return
    with ThreadPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        pending = {
            pool.submit(_attempt_point, task, policy, chaos) for task in tasks
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()


def run_sweep(
    grid: SweepGrid,
    config: SystemConfig | None = None,
    max_requests: int = DEFAULT_SWEEP_REQUESTS,
    jobs: int = 1,
    cache: ResultCache | None = None,
    policy: RetryPolicy | None = None,
    chaos: WorkerChaos | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    telemetry: bool = False,
    status: SweepStatus | None = None,
    engine: str = "vector",
) -> SweepResult:
    """Execute every point of ``grid`` and return the merged result.

    Args:
        grid: the design space to sweep.
        config: base system configuration; each grid config variant's
            overrides are merged on top of it.
        max_requests: exactly-simulated request budget per point.
        jobs: worker processes; ``1`` runs inline (deterministic serial
            fallback), ``<= 0`` uses one worker per CPU.
        cache: optional on-disk result cache; hits skip simulation,
            misses are stored after simulation.
        policy: optional :class:`~repro.sweep.resilience.RetryPolicy`;
            when given (or when ``chaos`` is), every point runs in
            killable per-attempt child processes with timeouts and
            deterministic backoff between retries.
        chaos: optional executor fault injection
            (:class:`~repro.sweep.resilience.WorkerChaos`); test/CI only.
        checkpoint: optional path for periodic progress snapshots
            (written atomically every ``checkpoint_every`` completions
            and at the end).
        resume: replay completed points from ``checkpoint`` before
            executing the remainder.  The final document is
            byte-identical to an uninterrupted run (enforced by tests).
        checkpoint_every: completions between snapshots.
        telemetry: record cross-process run telemetry -- every worker
            task carries a :class:`~repro.obs.telemetry.TraceContext`,
            workers ship span/event payloads back, and the merged
            :class:`~repro.obs.telemetry.RunTelemetry` lands on the
            result's ``telemetry`` attribute (run metadata only: the
            deterministic JSON document is untouched).
        status: optional :class:`~repro.obs.monitor.SweepStatus` the
            runner keeps current while executing, so an embedded
            :class:`~repro.obs.monitor.SweepMonitor` can serve live
            ``/status`` + ``/metrics`` from another thread.  Run
            metadata only -- the deterministic document is identical
            with or without it.
        engine: timing engine workers use (``"vector"`` by default,
            ``"exact"`` for the reference loop).  The engines are
            stat-for-stat equivalent (CI's ``engine-equivalence``
            gate), so the choice never enters cache keys or result
            documents -- a cache written by one engine replays under
            the other.

    A point that keeps failing is quarantined into the result's
    ``failures`` list instead of aborting the grid; infrastructure
    errors (invalid grid, unusable checkpoint) still raise.
    """
    config = config or SystemConfig()
    if engine not in ("exact", "vector"):
        raise ConfigError(
            f"unknown engine {engine!r}; expected 'exact' or 'vector'"
        )
    if max_requests <= 0:
        raise ConfigError(f"max_requests must be positive, got {max_requests}")
    if checkpoint_every <= 0:
        raise ConfigError(
            f"checkpoint_every must be positive, got {checkpoint_every}"
        )
    if resume and checkpoint is None:
        raise ConfigError("resume=True requires a checkpoint path")
    validate_grid(grid, config)
    jobs = resolve_jobs(jobs)
    # Wall-clock is run *metadata* (meta["wall_s"]), never part of the
    # deterministic result document results.py serializes.
    started = time.perf_counter()  # repro: ignore[DET001]

    config_dicts = {
        variant.label: system_to_dict(
            system_with_overrides(config, dict(variant.overrides))
        )
        for variant in grid.configs
    }
    run_tel: RunTelemetry | None = None
    run_id: str | None = None
    if telemetry or status is not None:
        run_id = SweepCheckpoint.digest_for(
            grid.as_dict(), config_dicts, max_requests, CACHE_VERSION
        )[:12]
    if telemetry:
        assert run_id is not None
        run_tel = RunTelemetry.start(run_id)
    log = get_logger("repro.sweep", **({"run_id": run_id} if run_id else {}))
    points = grid.points()
    results: list[dict[str, Any] | None] = [None] * len(points)
    registry = MetricsRegistry()

    ckpt: SweepCheckpoint | None = None
    completed: dict[int, dict[str, Any]] = {}
    resumed = 0
    if checkpoint is not None:
        ckpt = SweepCheckpoint(
            checkpoint,
            SweepCheckpoint.digest_for(
                grid.as_dict(), config_dicts, max_requests, CACHE_VERSION
            ),
        )
        if resume:
            completed, _ = ckpt.load()
            for index, result in completed.items():
                if 0 <= index < len(points):
                    results[index] = result
            resumed = sum(1 for entry in results if entry is not None)

    if status is not None:
        status.start_run(
            len(points), run_id=run_id, jobs=jobs, resumed=resumed
        )
    log.info("sweep started", points=len(points), jobs=jobs, resumed=resumed)

    tasks: list[dict[str, Any]] = []
    cached = 0
    for index, point in enumerate(points):
        if results[index] is not None:
            continue
        payload = {
            "point": point.as_dict(),
            "config": config_dicts[point.config_label],
            "max_requests": max_requests,
        }
        key = None
        if cache is not None:
            key = cache.key_for(payload)
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                completed[index] = hit
                cached += 1
                if status is not None:
                    status.mark_cached(index)
                if run_tel is not None:
                    run_tel.record_event(EV_CACHE_HIT, point=index)
                log.debug("cache hit", point=index)
                continue
        task = {"index": index, "key": key, **payload}
        # Attached AFTER key_for(payload): the engine choice (like the
        # trace context below) must never influence cache identity --
        # both engines produce the identical result document.
        task["engine"] = engine
        if run_tel is not None:
            # Attached AFTER key_for(payload): the trace context must
            # never influence cache identity.
            task["telemetry"] = run_tel.context_for(index).as_dict()
        tasks.append(task)

    failures: list[dict[str, Any]] = []
    retries_total = 0
    simulated = 0
    outcomes_by_index: dict[int, dict[str, Any]] = {}
    tasks_by_index = {task["index"]: task for task in tasks}

    if tasks:
        if run_tel is not None:
            for task in tasks:
                run_tel.mark_submit(task["index"])
        if policy is not None or chaos is not None:
            stream = _iter_outcomes_resilient(
                tasks, jobs, policy or RetryPolicy(), chaos
            )
        else:
            stream = _iter_outcomes_fast(tasks, jobs)
        since_snapshot = 0
        with span_or_null(
            run_tel.timeline if run_tel is not None else None,
            "execute",
            tasks=len(tasks),
            jobs=jobs,
        ):
            for entry in stream:
                retries_total += entry["retries"]
                if run_tel is not None:
                    _record_retry_events(run_tel, entry)
                if entry["status"] == "ok":
                    outcome = entry["outcome"]
                    index = outcome["index"]
                    results[index] = outcome["result"]
                    completed[index] = outcome["result"]
                    outcomes_by_index[index] = outcome
                    simulated += 1
                    worker_id: int | None = None
                    if run_tel is not None and "telemetry" in outcome:
                        worker_record = run_tel.merge_worker(
                            outcome["telemetry"]
                        )
                        worker_id = worker_record["worker_id"]
                    if status is not None:
                        attempts_log = entry.get("attempts_log") or []
                        status.mark_ok(
                            index,
                            worker_id=worker_id,
                            metrics=outcome["metrics"],
                            duration_s=(
                                attempts_log[-1].get("duration_s")
                                if attempts_log
                                else None
                            ),
                        )
                        if entry["retries"]:
                            status.mark_retry(index, entry["retries"])
                    task = tasks_by_index[index]
                    if cache is not None:
                        cache.put(
                            task["key"],
                            {
                                "point": task["point"],
                                "config": task["config"],
                                "max_requests": task["max_requests"],
                            },
                            outcome["result"],
                        )
                else:
                    failure = entry["failure"]
                    failures.append(failure)
                    if status is not None:
                        status.mark_failed(
                            failure["index"], reason=failure.get("reason")
                        )
                        if entry["retries"]:
                            status.mark_retry(
                                failure["index"], entry["retries"]
                            )
                    log.warning(
                        "point quarantined",
                        point=failure["index"],
                        error=failure["error"],
                        reason=failure.get("reason"),
                        attempts=failure["attempts"],
                    )
                since_snapshot += 1
                if ckpt is not None and since_snapshot >= checkpoint_every:
                    ckpt.save(
                        completed,
                        sorted(failures, key=lambda f: f["index"]),
                    )
                    since_snapshot = 0

    failures.sort(key=lambda f: f["index"])
    if ckpt is not None:
        ckpt.save(completed, failures)
    for index in sorted(outcomes_by_index):
        registry.merge_snapshot(outcomes_by_index[index]["metrics"])

    registry.counter("sweep.cache.hits", help="points replayed from cache").inc(
        cached
    )
    registry.counter("sweep.cache.misses", help="points simulated fresh").inc(
        len(tasks)
    )
    if retries_total:
        registry.counter("sweep.retries", help="extra attempts across points").inc(
            retries_total
        )
    if failures:
        registry.counter("sweep.failures", help="points quarantined").inc(
            len(failures)
        )
    final: list[dict[str, Any]] = []
    failed_indices = {failure["index"] for failure in failures}
    for index, entry in enumerate(results):
        if entry is None:
            assert index in failed_indices, f"point {index} produced no result"
            continue
        final.append(entry)
    meta = {
        "jobs": jobs,
        "simulated": simulated,
        "cached": cached,
        "resumed": resumed,
        "failed": len(failures),
        "retries": retries_total,
        "wall_s": time.perf_counter() - started,  # repro: ignore[DET001]
        "cache": cache.stats.as_dict() if cache is not None else None,
    }
    if run_tel is not None:
        meta["run_id"] = run_tel.run_id
    if status is not None:
        status.finish()
    log.info(
        "sweep finished",
        simulated=simulated,
        cached=cached,
        failed=len(failures),
        retries=retries_total,
        wall_s=meta["wall_s"],
    )
    return SweepResult(
        grid=grid,
        max_requests=max_requests,
        results=final,
        registry=registry,
        meta=meta,
        failures=failures,
        telemetry=run_tel,
    )
