"""Resilient sweep execution: timeouts, retries, quarantine, checkpoints.

A long design-space sweep dies in practice for boring reasons -- one
pathological point OOMs a worker, a shared machine stalls, a speculative
code change makes one configuration hang.  This module supplies the
pieces :func:`repro.sweep.runner.run_sweep` composes so a single bad
point can never take the grid down:

* :class:`RetryPolicy` -- per-attempt timeout plus bounded retries with
  exponential backoff and *deterministic* jitter (derived from the point
  index and attempt number, never the wall clock, so reruns behave
  identically);
* :class:`WorkerChaos` -- test-only fault injection for the executor
  itself: make chosen points crash or hang inside the worker, so the
  recovery machinery is exercised by the real failure path;
* :func:`run_attempt` -- one isolated attempt of one point in a
  killable child process (a hung worker is terminated, not waited on);
* :class:`SweepCheckpoint` -- periodic atomic snapshots of completed
  points keyed by a digest of the full sweep identity, replayed by
  ``--resume`` so an interrupted sweep continues instead of restarting.

Failures are quarantined as plain JSON records (:func:`failure_record`)
in the result document's ``failures`` section -- the healthy points'
payload stays deterministic and byte-identical to a failure-free run.
"""

from __future__ import annotations

import enum
import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigError, SweepExecutionError
from repro.obs.logging import get_logger
from repro.serialization import stable_digest

#: Schema tag stamped into every checkpoint file.
CHECKPOINT_SCHEMA = "repro-sweep-checkpoint/v1"


# ----------------------------------------------------------- failure reasons
class QuarantineReason(str, enum.Enum):
    """Why an attempt (or a whole point) was given up on.

    The canonical vocabulary every failure surface shares: per-attempt
    statuses from :func:`run_attempt`, quarantine records in sweep
    result documents, the monitor's ``/status`` breakdown, and the
    serving layer's degraded-mode envelopes.  String-valued so the
    members serialize as themselves in JSON documents.
    """

    #: The attempt exceeded its wall-clock budget and was killed.
    TIMEOUT = "timeout"
    #: The worker process died without reporting (hard crash).
    WORKER_CRASH = "worker-crash"
    #: The worker raised an exception (including injected fault chaos).
    EXCEPTION = "exception"
    #: The attempt was abandoned by its caller (deadline/shutdown).
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: ``run_attempt`` status string -> canonical reason.
_STATUS_REASONS = {
    "timeout": QuarantineReason.TIMEOUT,
    "crashed": QuarantineReason.WORKER_CRASH,
    "error": QuarantineReason.EXCEPTION,
    "cancelled": QuarantineReason.CANCELLED,
}


def reason_for_status(status: str) -> QuarantineReason:
    """Map a non-ok :func:`run_attempt` status to its canonical reason."""
    try:
        return _STATUS_REASONS[status]
    except KeyError:
        raise ConfigError(
            f"unknown attempt status {status!r} "
            f"(known: {sorted(_STATUS_REASONS)})"
        ) from None


# ---------------------------------------------------------------- retry policy
def backoff_jitter(index: int, attempt: int) -> float:
    """Deterministic jitter fraction in ``[0, 1)`` for one (point, attempt).

    Hash-derived rather than drawn from a clock-seeded RNG, so two runs
    of the same sweep back off identically -- resilience never makes a
    run less reproducible.
    """
    digest = hashlib.sha256(f"{index}:{attempt}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor tries before quarantining a point.

    Attributes:
        timeout_s: wall-clock budget per attempt (``None`` = unbounded);
            a timed-out worker process is terminated, so hangs cannot
            wedge the sweep.
        retries: extra attempts after the first failure.
        backoff_s: base delay before the first retry.
        backoff_multiplier: exponential growth factor per retry.
        max_backoff_s: cap on any single delay.
    """

    timeout_s: float | None = None
    retries: int = 0
    backoff_s: float = 0.1
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(
                f"retry policy: timeout_s must be positive, got {self.timeout_s}"
            )
        if self.retries < 0:
            raise ConfigError(
                f"retry policy: retries must be >= 0, got {self.retries}"
            )
        if self.backoff_s < 0:
            raise ConfigError(
                f"retry policy: backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"retry policy: backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )
        if self.max_backoff_s < self.backoff_s:
            raise ConfigError(
                f"retry policy: max_backoff_s ({self.max_backoff_s}) must be "
                f">= backoff_s ({self.backoff_s})"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts per point (first try plus retries)."""
        return 1 + self.retries

    def backoff_for(self, index: int, attempt: int) -> float:
        """Delay in seconds after failed attempt ``attempt`` (1-based).

        Exponential in the attempt number, capped, with half-range
        deterministic jitter: ``base * (0.5 + 0.5 * jitter)``.
        """
        base = min(
            self.backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (0.5 + 0.5 * backoff_jitter(index, attempt))


# ---------------------------------------------------------------- worker chaos
@dataclass(frozen=True)
class WorkerChaos:
    """Executor-level fault injection (testing/CI only).

    Makes selected grid points misbehave *inside the worker*, so retry,
    timeout and quarantine handling are exercised through the identical
    code path a real failure takes.  Chaos parameters are excluded from
    cache keys -- a chaos run never poisons the result cache.

    Attributes:
        fail_points: grid indices whose attempts raise.
        hang_points: grid indices whose attempts sleep for ``hang_s``
            (long enough to trip any sane per-attempt timeout).
        fail_attempts: number of attempts that fail before the point
            recovers; ``None`` means every attempt fails.
        hang_s: how long a hanging attempt sleeps.
    """

    fail_points: tuple[int, ...] = ()
    hang_points: tuple[int, ...] = ()
    fail_attempts: int | None = None
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fail_points", tuple(int(i) for i in self.fail_points)
        )
        object.__setattr__(
            self, "hang_points", tuple(int(i) for i in self.hang_points)
        )
        if self.fail_attempts is not None and self.fail_attempts < 1:
            raise ConfigError(
                f"chaos: fail_attempts must be >= 1, got {self.fail_attempts}"
            )
        if self.hang_s <= 0:
            raise ConfigError(f"chaos: hang_s must be positive, got {self.hang_s}")

    def as_dict(self) -> dict[str, Any]:
        """JSON-native form shipped inside worker task payloads."""
        return {
            "fail_points": list(self.fail_points),
            "hang_points": list(self.hang_points),
            "fail_attempts": self.fail_attempts,
            "hang_s": self.hang_s,
        }


def apply_chaos(chaos: dict[str, Any], index: int, attempt: int) -> None:
    """Worker-side chaos hook: hang and/or raise for the configured points."""
    import time

    if index in chaos.get("hang_points", ()):
        time.sleep(chaos.get("hang_s", 30.0))
    if index in chaos.get("fail_points", ()):
        fail_attempts = chaos.get("fail_attempts")
        if fail_attempts is None or attempt <= fail_attempts:
            raise SweepExecutionError(
                f"chaos: injected failure at point {index} (attempt {attempt})"
            )


# ------------------------------------------------------------ isolated attempt
def _attempt_child(conn: Any, task: dict[str, Any]) -> None:
    """Child-process body of one attempt (module-level, fork/spawn safe)."""
    from repro.sweep.runner import _execute_task

    try:
        outcome = _execute_task(task)
    except BaseException as exc:  # noqa: BLE001 - quarantine everything
        conn.send(
            {"status": "error", "error": type(exc).__name__, "message": str(exc)}
        )
    else:
        conn.send({"status": "ok", "outcome": outcome})
    finally:
        conn.close()


#: How often a cancellable attempt re-checks its cancel event (seconds).
CANCEL_POLL_S = 0.05


def run_attempt(
    task: dict[str, Any],
    timeout_s: float | None,
    cancel_event: Any | None = None,
) -> dict[str, Any]:
    """Run one point attempt in a killable child process.

    Returns the child's status dict: ``{"status": "ok", "outcome": ...}``
    on success, ``{"status": "error", ...}`` when the worker raised,
    ``{"status": "timeout"}`` when the attempt exceeded ``timeout_s``
    (the child is terminated), ``{"status": "crashed"}`` when the child
    died without reporting (hard crash), ``{"status": "cancelled"}``
    when ``cancel_event`` was set while the attempt ran (the child is
    terminated -- abandoned work never lingers).  Every non-ok status
    carries its canonical ``reason`` (:class:`QuarantineReason`), and
    every status the attempt's measured ``duration_s``.

    ``cancel_event`` is any object with an ``is_set()`` method (a
    ``threading.Event`` in practice); when given, the wait polls in
    :data:`CANCEL_POLL_S` slices so cancellation lands promptly even
    under an unbounded timeout.  This is the cancellation hook the
    serving layer uses to propagate per-request deadlines to workers.
    """
    # Attempt duration is telemetry about THIS execution (it feeds the
    # run trace's retry annotations), never part of the deterministic
    # result payload -- same carve-out as the runner's meta["wall_s"].
    import time

    started = time.perf_counter()  # repro: ignore[DET001]
    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    # Forked children run _attempt_child only: it re-seeds, touches no
    # parent locks, and reports over its own pipe end, so the
    # thread-before-fork hazard cannot bite; spawn would pay a full
    # interpreter+numpy start per attempt (many per point under retry).
    # repro: ignore[CONC003]
    proc = multiprocessing.Process(
        target=_attempt_child, args=(child_conn, task), daemon=True
    )
    proc.start()
    child_conn.close()
    log = get_logger(
        "repro.sweep.resilience",
        point_id=task["index"],
        attempt=task.get("attempt", 1),
    )

    def _wait_for_report() -> str:
        """Poll the pipe; ``"ready"``, ``"timeout"`` or ``"cancelled"``."""
        if cancel_event is None:
            return "ready" if parent_conn.poll(timeout_s) else "timeout"
        deadline = (
            None
            if timeout_s is None
            else time.perf_counter() + timeout_s  # repro: ignore[DET001]
        )
        while True:
            if cancel_event.is_set():
                return "cancelled"
            slice_s = CANCEL_POLL_S
            if deadline is not None:
                remaining = deadline - time.perf_counter()  # repro: ignore[DET001]
                if remaining <= 0:
                    return "timeout"
                slice_s = min(slice_s, remaining)
            if parent_conn.poll(slice_s):
                return "ready"

    try:
        waited = _wait_for_report()
        if waited != "ready":
            proc.terminate()
            proc.join()
            status: dict[str, Any] = {"status": waited}
            if waited == "timeout":
                log.warning("attempt timed out", timeout_s=timeout_s)
            else:
                log.info("attempt cancelled")
        else:
            try:
                status = parent_conn.recv()
            except EOFError:
                status = {
                    "status": "crashed",
                    "exitcode": proc.exitcode,
                }
                log.warning("worker crashed", exitcode=proc.exitcode)
        if status["status"] == "error":
            log.warning(
                "attempt raised",
                error=status.get("error"),
                detail=status.get("message"),
            )
        if status["status"] != "ok":
            status["reason"] = reason_for_status(status["status"]).value
        status["duration_s"] = time.perf_counter() - started  # repro: ignore[DET001]
        return status
    finally:
        parent_conn.close()
        proc.join()


def failure_record(
    index: int,
    point: dict[str, Any],
    error: str,
    message: str,
    attempts: int,
    timed_out: bool = False,
    reason: QuarantineReason | str = QuarantineReason.EXCEPTION,
) -> dict[str, Any]:
    """The quarantine record one failed point leaves in ``failures``.

    ``reason`` is the canonical :class:`QuarantineReason` of the *last*
    attempt (free-text stays in ``message``); ``timed_out`` is kept as
    a redundant boolean for schema-v2 consumers.
    """
    return {
        "index": index,
        "point": point,
        "error": error,
        "message": message,
        "attempts": attempts,
        "timed_out": timed_out,
        "reason": QuarantineReason(reason).value,
    }


# ------------------------------------------------------------------ checkpoint
class SweepCheckpoint:
    """Atomic on-disk snapshots of a sweep in progress.

    The file carries a digest of the sweep's full identity (grid spec,
    resolved configurations, request budget and cache version), so a
    resume against a *different* sweep fails loudly instead of silently
    splicing foreign results.
    """

    def __init__(self, path: str | Path, digest: str) -> None:
        self.path = Path(path)
        self.digest = digest

    @staticmethod
    def digest_for(
        grid_dict: dict[str, Any],
        config_dicts: dict[str, Any],
        max_requests: int,
        version: str,
    ) -> str:
        """Content digest of everything that determines the sweep's results."""
        return stable_digest(
            {
                "grid": grid_dict,
                "configs": config_dicts,
                "max_requests": max_requests,
                "version": version,
            }
        )

    def load(self) -> tuple[dict[int, dict[str, Any]], list[dict[str, Any]]]:
        """Replay a checkpoint: ``(completed results by index, failures)``.

        Returns empty state when the file does not exist (a fresh run).
        Raises :class:`~repro.errors.SweepExecutionError` when the file
        is unreadable, corrupt, or belongs to a different sweep --
        resuming must never silently mix results.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}, []
        except OSError as exc:
            raise SweepExecutionError(
                f"{self.path}: cannot read checkpoint ({exc})"
            ) from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepExecutionError(
                f"{self.path}: corrupt checkpoint ({exc})"
            ) from exc
        if (
            not isinstance(document, dict)
            or document.get("schema") != CHECKPOINT_SCHEMA
        ):
            raise SweepExecutionError(
                f"{self.path}: not a sweep checkpoint "
                f"(schema {document.get('schema')!r} != {CHECKPOINT_SCHEMA!r})"
            )
        if document.get("digest") != self.digest:
            raise SweepExecutionError(
                f"{self.path}: checkpoint belongs to a different sweep "
                f"(digest mismatch; grid, config or request budget changed)"
            )
        completed_raw = document.get("completed", {})
        if not isinstance(completed_raw, dict):
            raise SweepExecutionError(
                f"{self.path}: corrupt checkpoint ('completed' not a mapping)"
            )
        completed: dict[int, dict[str, Any]] = {}
        for key, value in completed_raw.items():
            if not isinstance(value, dict):
                raise SweepExecutionError(
                    f"{self.path}: corrupt checkpoint (entry {key!r} not a dict)"
                )
            completed[int(key)] = value
        failures = document.get("failures", [])
        if not isinstance(failures, list):
            raise SweepExecutionError(
                f"{self.path}: corrupt checkpoint ('failures' not a list)"
            )
        return completed, failures

    def save(
        self,
        completed: dict[int, dict[str, Any]],
        failures: list[dict[str, Any]],
    ) -> None:
        """Atomically write the current progress (temp file + rename)."""
        document = {
            "schema": CHECKPOINT_SCHEMA,
            "digest": self.digest,
            "completed": {str(k): v for k, v in sorted(completed.items())},
            "failures": failures,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        get_logger("repro.sweep.resilience").debug(
            "checkpoint saved",
            path=str(self.path),
            completed=len(completed),
            failures=len(failures),
        )
