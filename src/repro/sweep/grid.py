"""Sweep grids: the cartesian design space a sweep explores.

A grid is the cross product of four axes:

* ``sizes``   -- problem sizes ``N`` (``N x N`` matrices);
* ``layouts`` -- layout names (``"row-major"``, ``"ddl"``, or any
  candidate name the planner enumerates, e.g. ``"column-major"``);
* ``heights`` -- block heights ``h`` for the ``"ddl"`` layout (``None``
  applies the paper's Eq. (1); flat layouts ignore this axis);
* ``configs`` -- named :class:`~repro.core.config.SystemConfig` override
  sets (timing parameters, stream counts, ...), applied on top of the
  sweep's base configuration.

Grids expand to a deterministic tuple of :class:`SweepPoint`\\ s --
``configs`` outermost, then ``sizes``, ``layouts``, ``heights`` -- so a
sweep's result ordering is a pure function of its spec.  Grids load from
JSON or TOML spec files (see ``docs/sweep.md``) or build directly from
CLI flags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping
from typing import Any

from repro.errors import ConfigError

#: Layout names handled without consulting the planner's enumeration.
BUILTIN_LAYOUTS = ("row-major", "ddl")


def _freeze_overrides(overrides: Mapping[str, Any]) -> dict[str, Any]:
    if not isinstance(overrides, Mapping):
        raise ConfigError(
            f"config overrides must be a mapping, got {type(overrides).__name__}"
        )
    return {
        key: _freeze_overrides(value) if isinstance(value, Mapping) else value
        for key, value in overrides.items()
    }


@dataclass(frozen=True)
class ConfigVariant:
    """One named point on the grid's configuration axis.

    ``overrides`` uses the serialized config schema of
    :func:`repro.serialization.system_to_dict`, merged recursively into
    the sweep's base configuration (partial overrides are fine).
    """

    label: str = "default"
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigError("config variant label must be non-empty")
        object.__setattr__(self, "overrides", _freeze_overrides(self.overrides))


@dataclass(frozen=True)
class SweepPoint:
    """One simulation of the design space: a column phase to price.

    ``height=None`` on the ``"ddl"`` layout means Eq. (1); on flat
    layouts height is always ``None``.  ``config_label`` names the
    :class:`ConfigVariant` this point runs under.
    """

    n: int
    layout: str
    height: int | None
    config_label: str
    whole_blocks: bool = True

    def as_dict(self) -> dict[str, Any]:
        """JSON-able identity of the point (cache key material)."""
        return {
            "n": self.n,
            "layout": self.layout,
            "height": self.height,
            "config_label": self.config_label,
            "whole_blocks": self.whole_blocks,
        }


@dataclass(frozen=True)
class SweepGrid:
    """The declarative spec of a design-space sweep."""

    sizes: tuple[int, ...]
    layouts: tuple[str, ...] = BUILTIN_LAYOUTS
    heights: tuple[int | None, ...] = (None,)
    configs: tuple[ConfigVariant, ...] = (ConfigVariant(),)
    whole_blocks: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(int(n) for n in self.sizes))
        object.__setattr__(self, "layouts", tuple(self.layouts))
        object.__setattr__(
            self,
            "heights",
            tuple(None if not h else int(h) for h in self.heights),
        )
        object.__setattr__(self, "configs", tuple(self.configs))
        if not self.sizes:
            raise ConfigError("sweep grid needs at least one size")
        if any(n <= 0 for n in self.sizes):
            raise ConfigError(f"sizes must be positive, got {self.sizes}")
        if not self.layouts:
            raise ConfigError("sweep grid needs at least one layout")
        if not self.heights:
            raise ConfigError(
                "sweep grid needs at least one height (use None for Eq. (1))"
            )
        if any(h is not None and h <= 0 for h in self.heights):
            raise ConfigError(f"heights must be positive or None, got {self.heights}")
        if not self.configs:
            raise ConfigError("sweep grid needs at least one config variant")
        labels = [variant.label for variant in self.configs]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate config labels: {labels}")

    # ------------------------------------------------------------- expansion
    def points(self) -> tuple[SweepPoint, ...]:
        """Expand to the deterministic point list.

        The ``heights`` axis applies only to the ``"ddl"`` layout; every
        other layout contributes one point per (config, size).
        """
        expanded: list[SweepPoint] = []
        for variant in self.configs:
            for n in self.sizes:
                for layout in self.layouts:
                    heights = self.heights if layout == "ddl" else (None,)
                    for height in heights:
                        expanded.append(
                            SweepPoint(
                                n=n,
                                layout=layout,
                                height=height,
                                config_label=variant.label,
                                whole_blocks=self.whole_blocks,
                            )
                        )
        return tuple(expanded)

    def n_points(self) -> int:
        """Number of points the grid expands to."""
        return len(self.points())

    def variant(self, label: str) -> ConfigVariant:
        """The config variant named ``label``."""
        for variant in self.configs:
            if variant.label == label:
                return variant
        raise ConfigError(f"unknown config label {label!r}")

    def as_dict(self) -> dict[str, Any]:
        """JSON-able snapshot of the grid spec (deterministic)."""
        return {
            "sizes": list(self.sizes),
            "layouts": list(self.layouts),
            "heights": [h for h in self.heights],
            "whole_blocks": self.whole_blocks,
            "configs": [
                {"label": variant.label, "overrides": dict(variant.overrides)}
                for variant in self.configs
            ],
        }


# ------------------------------------------------------------- spec files
def grid_from_dict(data: Mapping[str, Any]) -> SweepGrid:
    """Build a grid from a spec dict (the parsed JSON/TOML document).

    The spec may wrap its keys in a top-level ``grid`` table or use them
    directly.  ``heights`` entries of ``0`` or ``null`` mean Eq. (1)
    (TOML has no null).  Unknown keys are rejected.
    """
    if not isinstance(data, Mapping):
        raise ConfigError("sweep spec: expected a mapping")
    if "grid" in data:
        extra = set(data) - {"grid"}
        if extra:
            raise ConfigError(f"sweep spec: unknown top-level keys {sorted(extra)}")
        data = data["grid"]
        if not isinstance(data, Mapping):
            raise ConfigError("sweep spec: 'grid' must be a mapping")
    allowed = {"sizes", "layouts", "heights", "whole_blocks", "configs"}
    unknown = set(data) - allowed
    if unknown:
        raise ConfigError(f"sweep spec: unknown keys {sorted(unknown)}")
    if "sizes" not in data:
        raise ConfigError("sweep spec: 'sizes' is required")
    kwargs: dict[str, Any] = {"sizes": tuple(data["sizes"])}
    if "layouts" in data:
        kwargs["layouts"] = tuple(data["layouts"])
    if "heights" in data:
        kwargs["heights"] = tuple(data["heights"])
    if "whole_blocks" in data:
        kwargs["whole_blocks"] = bool(data["whole_blocks"])
    if "configs" in data:
        variants = []
        for entry in data["configs"]:
            if not isinstance(entry, Mapping):
                raise ConfigError("sweep spec: each config must be a mapping")
            extra = set(entry) - {"label", "overrides"}
            if extra:
                raise ConfigError(f"sweep spec: unknown config keys {sorted(extra)}")
            variants.append(
                ConfigVariant(
                    label=entry.get("label", "default"),
                    overrides=entry.get("overrides", {}),
                )
            )
        kwargs["configs"] = tuple(variants)
    return SweepGrid(**kwargs)


def load_grid_spec(path: str | Path) -> SweepGrid:
    """Load a grid spec from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"{path}: cannot read sweep spec ({exc})") from exc
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"{path}: invalid TOML ({exc})") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    return grid_from_dict(data)
