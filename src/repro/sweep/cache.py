"""On-disk content-addressed cache of sweep point results.

Every completed point is stored under a key derived from *everything
that determines its result*: the point identity (size, layout, height,
block mode), the fully-resolved system configuration it ran under, the
request budget, and a code-version salt.  Repeated and incremental
sweeps then skip already-simulated points; changing any input -- or
bumping :data:`CACHE_VERSION` when simulation semantics change -- moves
the key and naturally invalidates stale entries.

Entries are one JSON file each, sharded by key prefix
(``<root>/<k[:2]>/<k>.json``), written atomically (temp file +
``os.replace``) so concurrent sweeps sharing a cache directory can never
observe a torn entry.  Corrupt or unreadable entries count as misses
and are re-simulated, never trusted.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.serialization import stable_digest

#: Bump when the simulator or result schema changes meaning; every bump
#: invalidates all previously cached points at once.
CACHE_VERSION = "repro-sweep-cache/v1"


@dataclass
class CacheStats:
    """Hit/miss accounting for one sweep run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (JSON-ready)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


@dataclass
class ResultCache:
    """A content-addressed store of point results under one directory."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------ keys
    @staticmethod
    def key_for(payload: dict[str, Any]) -> str:
        """Content address of a point payload (stable across processes).

        ``payload`` must be JSON-native and carry the point's full
        identity -- the runner passes ``{point, config, max_requests}``.
        The version salt is folded in here so a semantics bump rekeys
        everything.
        """
        return stable_digest({"version": CACHE_VERSION, "payload": payload})

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    # ---------------------------------------------------------------- access
    def get(self, key: str) -> dict[str, Any] | None:
        """The cached result dict for ``key``, or ``None`` on a miss.

        Any read or decode failure (torn file, foreign content, schema
        drift) is treated as a miss and tallied in ``stats.invalid``.
        """
        path = self.path_for(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or document.get("version") != CACHE_VERSION
            or not isinstance(document.get("result"), dict)
        ):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return document["result"]

    def put(self, key: str, payload: dict[str, Any], result: dict[str, Any]) -> None:
        """Store ``result`` under ``key``; the payload is kept for audit."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "version": CACHE_VERSION,
            "key": key,
            "payload": payload,
            "result": result,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        self.stats.stores += 1

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
