"""On-disk content-addressed cache of sweep point results.

Every completed point is stored under a key derived from *everything
that determines its result*: the point identity (size, layout, height,
block mode), the fully-resolved system configuration it ran under, the
request budget, and a code-version salt.  Repeated and incremental
sweeps then skip already-simulated points; changing any input -- or
bumping :data:`CACHE_VERSION` when simulation semantics change -- moves
the key and naturally invalidates stale entries.

Entries are one JSON file each, sharded by key prefix
(``<root>/<k[:2]>/<k>.json``), written atomically (temp file +
``os.replace``) so concurrent sweeps sharing a cache directory can never
observe a torn entry.

Reads are verified, not trusted: every entry carries a content digest
of its result, and :meth:`ResultCache.get` checks the digest, the
embedded key and the schema before replaying.  A truncated, corrupt,
mis-keyed or bit-flipped entry counts as a miss, is deleted on the spot
(tallied in ``stats.healed``), and the subsequent ``put`` atomically
rewrites a good entry -- the cache heals itself instead of serving
garbage.  :meth:`ResultCache.scrub` runs the same verification over the
whole store offline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CacheCorruptionError
from repro.obs.logging import get_logger
from repro.serialization import stable_digest

#: Bump when the simulator or result schema changes meaning; every bump
#: invalidates all previously cached points at once.  v2 added per-entry
#: result digests (verified on every read).  v3: the timing loop moved
#: to an integer-picosecond timebase (sub-femtosecond shifts in derived
#: floats), so entries cached by the float-ns simulator are stale.
CACHE_VERSION = "repro-sweep-cache/v3"


@dataclass
class CacheStats:
    """Hit/miss accounting for one sweep run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    #: Corrupt entries deleted so a later ``put`` can rewrite them.
    healed: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (JSON-ready)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "healed": self.healed,
        }


@dataclass
class ResultCache:
    """A content-addressed store of point results under one directory."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------ keys
    @staticmethod
    def key_for(payload: dict[str, Any]) -> str:
        """Content address of a point payload (stable across processes).

        ``payload`` must be JSON-native and carry the point's full
        identity -- the runner passes ``{point, config, max_requests}``.
        The version salt is folded in here so a semantics bump rekeys
        everything.
        """
        return stable_digest({"version": CACHE_VERSION, "payload": payload})

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    # ---------------------------------------------------------- verification
    @staticmethod
    def _verify(path: Path, key: str | None, document: Any) -> dict[str, Any]:
        """Validate one loaded entry; the verified result dict on success.

        Raises :class:`~repro.errors.CacheCorruptionError` describing the
        first check that failed: schema shape, version, embedded key
        (when ``key`` is given) or result digest.
        """
        if not isinstance(document, dict):
            raise CacheCorruptionError(f"{path}: entry is not a JSON object")
        if document.get("version") != CACHE_VERSION:
            raise CacheCorruptionError(
                f"{path}: version {document.get('version')!r} != {CACHE_VERSION!r}"
            )
        result = document.get("result")
        if not isinstance(result, dict):
            raise CacheCorruptionError(f"{path}: 'result' is not a JSON object")
        if key is not None and document.get("key") != key:
            raise CacheCorruptionError(
                f"{path}: entry is mis-keyed "
                f"(stored under {document.get('key')!r}, expected {key!r})"
            )
        digest = document.get("digest")
        if digest != stable_digest(result):
            raise CacheCorruptionError(
                f"{path}: result digest mismatch (entry corrupt or tampered)"
            )
        return result

    def _heal(self, path: Path) -> None:
        """Remove a corrupt entry so the next ``put`` rewrites it cleanly."""
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / permission race
            return
        self.stats.healed += 1
        get_logger("repro.sweep.cache").warning(
            "corrupt cache entry healed", path=str(path)
        )

    # ---------------------------------------------------------------- access
    def get(self, key: str) -> dict[str, Any] | None:
        """The verified cached result for ``key``, or ``None`` on a miss.

        Any read, decode or verification failure (torn file, foreign
        content, schema drift, digest or key mismatch) is treated as a
        miss: the bad entry is deleted (``stats.invalid`` and
        ``stats.healed`` are tallied) and the caller re-simulates, after
        which ``put`` atomically rewrites a good entry.
        """
        path = self.path_for(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            self._heal(path)
            return None
        try:
            result = self._verify(path, key, document)
        except CacheCorruptionError:
            self.stats.invalid += 1
            self.stats.misses += 1
            self._heal(path)
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, payload: dict[str, Any], result: dict[str, Any]) -> None:
        """Store ``result`` under ``key``; the payload is kept for audit."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "version": CACHE_VERSION,
            "key": key,
            "digest": stable_digest(result),
            "payload": payload,
            "result": result,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        self.stats.stores += 1

    # ----------------------------------------------------------- maintenance
    def scrub(self) -> dict[str, int]:
        """Verify every entry on disk, deleting the ones that fail.

        Returns ``{"checked": ..., "healed": ...}``.  Useful after a
        crash or an rsync of a shared cache; ``get`` performs the same
        per-entry verification lazily.
        """
        checked = 0
        healed_before = self.stats.healed
        if self.root.is_dir():
            for path in sorted(self.root.glob("*/*.json")):
                checked += 1
                try:
                    document = json.loads(path.read_text(encoding="utf-8"))
                    self._verify(path, path.stem, document)
                except (OSError, json.JSONDecodeError, CacheCorruptionError):
                    self.stats.invalid += 1
                    self._heal(path)
        return {"checked": checked, "healed": self.stats.healed - healed_before}

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
