"""Sweep results: deterministic JSON documents plus markdown rendering.

A :class:`SweepResult` separates two kinds of information:

* the **deterministic payload** (:meth:`SweepResult.to_json`) -- grid
  spec, request budget and the per-point result dicts, in grid order.
  Running the same grid with any ``--jobs`` value, or replaying it from
  a warm cache, produces byte-identical JSON (the test suite enforces
  this);
* the **run metadata** (``meta``, ``registry``, ``telemetry``) --
  wall-clock time, worker count, cache hit rates, merged metrics and
  cross-process trace telemetry, which describe *this execution* and
  are deliberately excluded from the payload.

Quarantined point failures (schema v2) live in the document's
``failures`` list: structured records of every point the resilient
executor gave up on (index, point identity, error class, message,
attempt count, timeout flag), in grid order.  The healthy points'
``results`` payload is unaffected -- a run where some points fail is
byte-identical, over the surviving points, to a failure-free run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import RunTelemetry
from repro.sweep.grid import SweepGrid

#: Schema tag stamped into every result document.  v2 added the
#: ``failures`` quarantine section; v3 added the canonical ``reason``
#: (:class:`~repro.sweep.resilience.QuarantineReason`) to each record.
RESULT_SCHEMA = "repro-sweep-result/v3"


class SweepError(ReproError):
    """Sweep execution or result-selection failure."""


@dataclass
class SweepResult:
    """Everything a finished sweep produced."""

    grid: SweepGrid
    max_requests: int
    results: list[dict[str, Any]]
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    meta: dict[str, Any] = field(default_factory=dict)
    #: Quarantine records of points the executor gave up on (grid order);
    #: see :func:`repro.sweep.resilience.failure_record` for the shape.
    failures: list[dict[str, Any]] = field(default_factory=list)
    #: Merged cross-process run telemetry (``run_sweep(telemetry=True)``);
    #: run metadata like ``meta``/``registry``, never part of the
    #: deterministic payload.
    telemetry: RunTelemetry | None = None

    # ------------------------------------------------------------- selection
    def select(self, **criteria: Any) -> list[dict[str, Any]]:
        """Point results whose fields equal every given criterion.

        Criteria use result-dict keys: ``n``, ``layout``, ``config``,
        ``height``, ...  e.g. ``result.select(n=2048, layout="ddl")``.
        """
        return [
            entry
            for entry in self.results
            if all(entry.get(key) == value for key, value in criteria.items())
        ]

    def one(self, **criteria: Any) -> dict[str, Any]:
        """The unique point result matching the criteria."""
        matches = self.select(**criteria)
        if len(matches) != 1:
            raise SweepError(
                f"expected exactly one result for {criteria}, got {len(matches)}"
            )
        return matches[0]

    # ---------------------------------------------------------------- export
    def to_json_dict(self) -> dict[str, Any]:
        """The deterministic result document (JSON-native values only)."""
        return {
            "schema": RESULT_SCHEMA,
            "max_requests": self.max_requests,
            "grid": self.grid.as_dict(),
            "results": self.results,
            "failures": self.failures,
        }

    def to_json(self) -> str:
        """Canonical pretty-printed JSON of :meth:`to_json_dict`."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def render_markdown(self) -> str:
        """Human-readable sweep table, one row per point in grid order."""
        header = [
            "config",
            "N",
            "layout",
            "h",
            "discipline",
            "phase GB/s",
            "phase util",
            "mem util",
            "row hits",
            "bound",
        ]
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        for entry in self.results:
            height = entry.get("height")
            lines.append(
                "| "
                + " | ".join(
                    [
                        str(entry["config"]),
                        str(entry["n"]),
                        str(entry["layout"]),
                        "--" if height is None else str(height),
                        str(entry["discipline"]),
                        f"{entry['throughput_gbps']:.2f}",
                        f"{100 * entry['utilization']:.1f}%",
                        f"{100 * entry['memory_utilization']:.1f}%",
                        f"{100 * entry['row_hit_rate']:.1f}%",
                        str(entry["bound"]),
                    ]
                )
                + " |"
            )
        return "\n".join(lines)

    def describe_run(self) -> str:
        """One-line execution summary (non-deterministic run metadata)."""
        parts = [f"{len(self.results)} points"]
        simulated = self.meta.get("simulated")
        cached = self.meta.get("cached")
        if simulated is not None:
            parts.append(f"{simulated} simulated")
        if cached is not None:
            parts.append(f"{cached} from cache")
        resumed = self.meta.get("resumed")
        if resumed:
            parts.append(f"{resumed} from checkpoint")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        jobs = self.meta.get("jobs")
        if jobs is not None:
            parts.append(f"jobs={jobs}")
        wall = self.meta.get("wall_s")
        if wall is not None:
            parts.append(f"{wall:.2f}s")
        return ", ".join(parts)
