"""Parallel design-space sweeps with on-disk result caching.

The paper's headline figures come from sweeping block height ``h``,
matrix size ``N`` and memory timing parameters and comparing layouts --
an embarrassingly parallel exploration this package runs as one:

* :mod:`repro.sweep.grid` -- declarative :class:`SweepGrid` over
  ``(N, layout, h, config)`` with JSON/TOML spec files;
* :mod:`repro.sweep.runner` -- :func:`run_sweep`: process-pool fan-out
  with a deterministic serial fallback, per-worker
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots merged in the
  parent;
* :mod:`repro.sweep.cache` -- :class:`ResultCache`: content-addressed
  on-disk memoization keyed by the resolved configuration plus a
  code-version salt, so repeated and incremental sweeps skip
  already-simulated points;
* :mod:`repro.sweep.results` -- :class:`SweepResult`: a deterministic
  JSON document (identical for any ``--jobs`` value and for warm-cache
  replays) plus markdown rendering;
* :mod:`repro.sweep.resilience` -- :class:`RetryPolicy` (per-attempt
  timeouts, bounded retries, deterministic backoff),
  :class:`SweepCheckpoint` (periodic atomic progress snapshots replayed
  by ``--resume``) and :class:`WorkerChaos` (executor fault injection
  for tests/CI).  Worker failures are quarantined into the result's
  ``failures`` section; one bad point never aborts the grid.

``python -m repro sweep`` is the CLI entry point; the ``reproduce``
report's N-sweep and h-sweep sections run on this engine.  See
``docs/sweep.md``.
"""

from repro.sweep.cache import CACHE_VERSION, CacheStats, ResultCache
from repro.sweep.grid import (
    ConfigVariant,
    SweepGrid,
    SweepPoint,
    grid_from_dict,
    load_grid_spec,
)
from repro.sweep.resilience import (
    CHECKPOINT_SCHEMA,
    QuarantineReason,
    RetryPolicy,
    SweepCheckpoint,
    WorkerChaos,
    backoff_jitter,
    failure_record,
    reason_for_status,
    run_attempt,
)
from repro.sweep.results import RESULT_SCHEMA, SweepError, SweepResult
from repro.sweep.runner import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_SWEEP_REQUESTS,
    point_result,
    resolve_jobs,
    run_sweep,
    validate_grid,
)

__all__ = [
    "CACHE_VERSION",
    "CHECKPOINT_SCHEMA",
    "CacheStats",
    "ConfigVariant",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_SWEEP_REQUESTS",
    "QuarantineReason",
    "RESULT_SCHEMA",
    "ResultCache",
    "RetryPolicy",
    "SweepCheckpoint",
    "SweepError",
    "SweepGrid",
    "SweepPoint",
    "SweepResult",
    "WorkerChaos",
    "backoff_jitter",
    "failure_record",
    "grid_from_dict",
    "load_grid_spec",
    "point_result",
    "reason_for_status",
    "resolve_jobs",
    "run_attempt",
    "run_sweep",
    "validate_grid",
]
