"""Terminal visualization helpers.

Benchmarks and examples render their series as plain-text charts so the
repository has no plotting dependencies; these helpers keep that output
consistent (fixed-width bars, aligned labels, stable rounding).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import ReproError

#: Glyphs for eighth-resolution sparklines, lowest to highest.
_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


class VizError(ReproError):
    """Invalid chart input."""


def bar(fraction: float, width: int = 40, fill: str = "#", empty: str = ".") -> str:
    """A single horizontal bar for a 0..1 fraction."""
    if width <= 0:
        raise VizError(f"width must be positive, got {width}")
    clamped = min(max(fraction, 0.0), 1.0)
    filled = round(clamped * width)
    return fill * filled + empty * (width - filled)


def bar_chart(
    series: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Labelled horizontal bar chart; bars scale to the series maximum.

    Args:
        series: label -> value (values must be non-negative).
        width: bar width in characters.
        unit: suffix printed after each value.
        max_value: scale bars against this instead of the series maximum.
    """
    if not series:
        raise VizError("series must not be empty")
    if any(v < 0 for v in series.values()):
        raise VizError("bar chart values must be non-negative")
    top = max_value if max_value is not None else max(series.values())
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label in series)
    lines = []
    for label, value in series.items():
        lines.append(
            f"{label:<{label_width}}  {bar(value / top, width)}  "
            f"{value:,.2f}{unit}"
        )
    return "\n".join(lines)


def sparkline(
    values: Iterable[float], bounds: tuple[float, float] | None = None
) -> str:
    """A one-line trend glyph string.

    Values normalise to the series min..max by default; pass ``bounds``
    to pin the scale (e.g. ``(0, 1)`` for fractions of peak) so multiple
    sparklines are comparable.
    """
    data = list(values)
    if not data:
        raise VizError("sparkline needs at least one value")
    if bounds is not None:
        lo, hi = bounds
        if hi <= lo:
            raise VizError(f"bounds must satisfy lo < hi, got {bounds}")
    else:
        lo, hi = min(data), max(data)
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[-1] * len(data)
    steps = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[round(min(max((v - lo) / span, 0.0), 1.0) * steps)]
        for v in data
    )


def percentage(fraction: float, decimals: int = 1) -> str:
    """Human percentage of a 0..1 fraction."""
    return f"{100 * fraction:.{decimals}f}%"


def vault_map(layout, memory, rows: int, cols: int) -> str:
    """ASCII map of which vault each matrix element lands in.

    One hex digit per element; works for up to 16 vaults.
    """
    if memory.config.vaults > 16:
        raise VizError("vault_map renders at most 16 vaults (one hex digit)")
    if rows <= 0 or cols <= 0:
        raise VizError("map extent must be positive")
    if rows > layout.n_rows or cols > layout.n_cols:
        raise VizError("map extent exceeds the matrix")
    lines = []
    for r in range(rows):
        cells = []
        for c in range(cols):
            decoded = memory.mapping.decode(layout.address(r, c))
            cells.append(f"{decoded.vault:x}")
        lines.append("".join(cells))
    return "\n".join(lines)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two text blocks horizontally (top-aligned)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    width = max((len(line) for line in left_lines), default=0)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l:<{width}}{' ' * gap}{r}" for l, r in zip(left_lines, right_lines, strict=True)
    )
