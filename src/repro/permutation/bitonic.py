"""Bitonic permutation routing (paper ref [7]).

The paper's permutation network is "developed based on our work in [7]"
-- the authors' bitonic sorting network.  A sorting network doubles as a
permutation router: route element ``i`` to position ``perm_inverse[i]``
by *sorting the destination tags*.  At configuration time the controller
runs Batcher's bitonic sort over the tags and records one control bit per
comparator (swap / pass); at run time the data replays those bits through
the same comparator lattice -- pure switching, no comparisons, exactly
what the FPGA fabric does.

For ``n = 2^k`` inputs the network has ``k(k+1)/2`` stages of ``n/2``
comparators, i.e. ``n/2 * k(k+1)/2`` control bits per configured
permutation -- the resource figures reported alongside the crossbar
network in the permutation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.permutation.network import PermutationError
from repro.units import ilog2, is_power_of_two

Comparator = tuple[int, int]


def bitonic_sorting_network(n: int) -> list[list[Comparator]]:
    """Batcher's bitonic sorting network for ``n = 2^k`` wires.

    Returns stages in execution order; each stage is a list of disjoint
    ``(low, high)`` comparator pairs (``low < high``), where a comparator
    orders its pair ascending.
    """
    if not is_power_of_two(n) or n < 2:
        raise PermutationError(f"network size must be a power of two >= 2, got {n}")
    stages: list[list[Comparator]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            stage: list[Comparator] = []
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    # Direction: ascending iff the k-block index is even.
                    if (i & k) == 0:
                        stage.append((i, partner))
                    else:
                        stage.append((partner, i))
            # Normalise to (low_index, high_index, direction) form: store
            # as (a, b) meaning "min result goes to a, max to b".
            stages.append(stage)
            j //= 2
        k *= 2
    return stages


def network_stage_count(n: int) -> int:
    """Number of comparator stages: k(k+1)/2 for n = 2^k."""
    k = ilog2(n)
    return k * (k + 1) // 2


def network_comparator_count(n: int) -> int:
    """Total comparators in the network."""
    return network_stage_count(n) * (n // 2)


class BitonicSorter:
    """The network in compare-exchange mode: a streaming sorter (ref [7]).

    Every stage's comparators fire unconditionally, so any input order
    sorts ascending after the full lattice -- the FPGA sorting engine the
    paper's permutation network descends from.  ``argsort`` additionally
    returns the permutation the lattice applied, which is how the router
    derives its control bits.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.stages = bitonic_sorting_network(n)

    def sort(self, data: np.ndarray) -> np.ndarray:
        """Return the data sorted ascending (last axis length ``n``)."""
        values = np.array(data, copy=True)
        if values.shape[-1] != self.n:
            raise PermutationError(
                f"data length {values.shape[-1]} does not match network {self.n}"
            )
        for stage in self.stages:
            for lo, hi in stage:
                low_vals = np.minimum(values[..., lo], values[..., hi])
                high_vals = np.maximum(values[..., lo], values[..., hi])
                values[..., lo] = low_vals
                values[..., hi] = high_vals
        return values

    def argsort(self, keys: np.ndarray) -> np.ndarray:
        """Indices that sort ``keys`` via the lattice (stable per lattice
        routing, not necessarily numpy-stable for equal keys)."""
        keys = np.asarray(keys)
        if keys.shape != (self.n,):
            raise PermutationError(f"keys must have length {self.n}")
        order = np.arange(self.n)
        values = keys.astype(np.float64).copy()
        for stage in self.stages:
            for lo, hi in stage:
                if values[lo] > values[hi]:
                    values[lo], values[hi] = values[hi], values[lo]
                    order[lo], order[hi] = order[hi], order[lo]
        return order

    @property
    def comparator_count(self) -> int:
        return network_comparator_count(self.n)

    @property
    def stage_count(self) -> int:
        return network_stage_count(self.n)


class BitonicPermutationRouter:
    """Route arbitrary permutations through a bitonic network.

    Configuration sorts the destination tags once and records the swap
    decisions; :meth:`apply` replays them over data.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.stages = bitonic_sorting_network(n)
        self._controls: list[np.ndarray] | None = None
        self._permutation: np.ndarray | None = None

    # ---------------------------------------------------------------- config
    def configure(self, permutation: np.ndarray) -> None:
        """Program the network to realise ``y[i] = x[permutation[i]]``."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.n,):
            raise PermutationError(
                f"permutation must have length {self.n}, got {perm.shape}"
            )
        if not np.array_equal(np.sort(perm), np.arange(self.n)):
            raise PermutationError("not a permutation")
        # Element at input position p must end at output position out(p):
        # out[perm[i]] = i.  Sorting the array `out` ascending moves input
        # p to position out[p]; record each comparator's decision.
        tags = np.empty(self.n, dtype=np.int64)
        tags[perm] = np.arange(self.n)
        controls: list[np.ndarray] = []
        work = tags.copy()
        for stage in self.stages:
            bits = np.zeros(len(stage), dtype=bool)
            for idx, (lo, hi) in enumerate(stage):
                if work[lo] > work[hi]:
                    work[lo], work[hi] = work[hi], work[lo]
                    bits[idx] = True
            controls.append(bits)
        if not np.array_equal(work, np.arange(self.n)):  # pragma: no cover
            raise PermutationError("bitonic sort failed to order the tags")
        self._controls = controls
        self._permutation = perm

    @property
    def permutation(self) -> np.ndarray:
        if self._permutation is None:
            raise PermutationError("router not configured")
        return self._permutation

    # ----------------------------------------------------------------- apply
    def apply(self, data: np.ndarray) -> np.ndarray:
        """Replay the recorded control bits over a data vector (or batch
        along the last axis)."""
        if self._controls is None:
            raise PermutationError("router not configured")
        values = np.array(data, copy=True)
        if values.shape[-1] != self.n:
            raise PermutationError(
                f"data length {values.shape[-1]} does not match network {self.n}"
            )
        for stage, bits in zip(self.stages, self._controls, strict=True):
            for (lo, hi), swap in zip(stage, bits, strict=True):
                if swap:
                    tmp = values[..., lo].copy()
                    values[..., lo] = values[..., hi]
                    values[..., hi] = tmp
        return values

    # --------------------------------------------------------------- costing
    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def comparator_count(self) -> int:
        return sum(len(stage) for stage in self.stages)

    @property
    def control_bits(self) -> int:
        """Configuration memory per programmed permutation."""
        return self.comparator_count
