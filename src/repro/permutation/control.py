"""The controlling unit (CU) of the optimized architecture (Fig. 3).

The CU owns the dynamic part of the dynamic data layout: at the boundary
between the row phase and the column phase it reconfigures the permutation
networks so that

* **write path** (phase 1): the row-major stream of FFT results is
  reordered block-by-block into the ``w x h`` column-major block interior
  before it is sent to the vaults;
* **read path** (phase 2): whole blocks fetched from the vaults are
  de-interleaved back into per-column streams for the column kernels.

Both reorders are stride permutations over one staged slab (``h`` matrix
rows), applied block-locally, so the network frames are small (one block)
even though the slab is large.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.block_ddl import BlockDDLLayout
from repro.layouts.optimizer import BlockGeometry
from repro.permutation.network import (
    PermutationError,
    PermutationNetwork,
    RoutingSchedule,
)


class ControllingUnit:
    """Computes and installs network configurations for a block geometry."""

    def __init__(self, geometry: BlockGeometry, width: int = 16) -> None:
        self.geometry = geometry
        self.write_network = PermutationNetwork(width)
        self.read_network = PermutationNetwork(width)

    # ------------------------------------------------------------ permutations
    def block_write_permutation(self) -> np.ndarray:
        """Row-major block interior -> column-major block interior.

        The staging buffer receives a block's elements row by row
        (``h`` rows of ``w``); the vault expects them column by column.
        This is the stride permutation ``L^{wh}_w`` in gather form.
        """
        w, h = self.geometry.width, self.geometry.height
        # Output position (c*h + r) takes input position (r*w + c).
        out = np.empty(w * h, dtype=np.int64)
        for c in range(w):
            for r in range(h):
                out[c * h + r] = r * w + c
        return out

    def block_read_permutation(self) -> np.ndarray:
        """Inverse reorder used on the read path (column-major -> row-major)."""
        forward = self.block_write_permutation()
        inverse = np.empty_like(forward)
        inverse[forward] = np.arange(forward.size)
        return inverse

    # ---------------------------------------------------------------- install
    def configure_for_write(self) -> RoutingSchedule:
        """Install the phase-1 write reorder; returns its schedule."""
        return self.write_network.configure(self.block_write_permutation())

    def configure_for_read(self) -> RoutingSchedule:
        """Install the phase-2 read reorder; returns its schedule."""
        return self.read_network.configure(self.block_read_permutation())

    # ------------------------------------------------------------- whole-slab
    def reorganize_slab(self, slab: np.ndarray, layout: BlockDDLLayout) -> np.ndarray:
        """Apply the write-path reorder to a staged slab of FFT output.

        Args:
            slab: ``(h, n_cols)`` array of row-phase results, natural order.
            layout: the target block layout (supplies w, h, block order).

        Returns:
            The slab's elements in memory order: one contiguous run per
            block, blocks in block-column order -- exactly the byte stream
            :func:`repro.trace.generators.block_write_trace` writes.
        """
        h, n_cols = slab.shape
        w = layout.width
        if h != layout.height:
            raise ValueError(f"slab height {h} != layout height {layout.height}")
        if n_cols != layout.n_cols:
            raise ValueError(f"slab width {n_cols} != matrix width {layout.n_cols}")
        # (h, blocks, w) -> (blocks, w, h): block-major, column-major interior.
        shaped = slab.reshape(h, n_cols // w, w)
        return np.ascontiguousarray(shaped.transpose(1, 2, 0)).reshape(-1)

    def restore_slab(self, stream: np.ndarray, layout: BlockDDLLayout) -> np.ndarray:
        """Inverse of :meth:`reorganize_slab` (read path, for testing)."""
        h = layout.height
        w = layout.width
        blocks = layout.n_cols // w
        shaped = np.asarray(stream).reshape(blocks, w, h)
        return np.ascontiguousarray(shaped.transpose(2, 0, 1)).reshape(h, layout.n_cols)

    @property
    def total_buffer_words(self) -> int:
        """Combined buffer requirement of both configured networks."""
        words = 0
        for network in (self.write_network, self.read_network):
            try:
                words += network.schedule.buffer_words
            except PermutationError:
                continue
        return words
