"""Streaming permutation network and its controlling unit.

The optimized architecture (paper Fig. 3) inserts permutation networks
between the vault memory controllers and the FFT kernel; a controlling
unit reconfigures them at phase boundaries so that row-FFT results are
written back in the block dynamic data layout and column-FFT inputs are
de-blocked into column streams.
"""

from repro.permutation.network import (
    PermutationNetwork,
    RoutingSchedule,
)
from repro.permutation.control import ControllingUnit

__all__ = ["ControllingUnit", "PermutationNetwork", "RoutingSchedule"]
