"""Streaming permutation network (paper Fig. 2b / ref [7]).

The hardware is a front rank of crossbar switches, a rank of data buffers
(one per lane) and a back rank of crossbars.  A frame of ``F`` elements
arrives ``width`` per cycle; the network emits the same elements ``width``
per cycle in permuted order.

The functional model (:meth:`PermutationNetwork.permute`) applies the
permutation exactly.  The routing model (:meth:`PermutationNetwork.route`)
computes what the hardware needs to realise it: each element is steered by
the front crossbar into the buffer of its *output* lane, waits until its
output cycle, and leaves through the back crossbar.  The schedule reports
per-lane buffer depth, total latency, and any write-port conflicts (two
same-cycle arrivals bound for one lane), which cost stall cycles on a
single-write-port buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.units import is_power_of_two


class PermutationError(ReproError):
    """The permutation is malformed or incompatible with the network."""


@dataclass(frozen=True)
class RoutingSchedule:
    """Hardware requirements of one configured frame permutation.

    Attributes:
        frame: frame length in elements.
        width: lanes (elements per cycle).
        buffer_depth: deepest per-lane buffer occupancy, in elements.
        latency_cycles: cycles from a frame's first input beat to its first
            output beat, including stalls.
        stall_cycles: extra cycles lost to buffer write-port conflicts.
        max_writes_per_lane_cycle: worst same-cycle writes into one buffer
            (1 means conflict-free).
    """

    frame: int
    width: int
    buffer_depth: int
    latency_cycles: int
    stall_cycles: int
    max_writes_per_lane_cycle: int

    @property
    def conflict_free(self) -> bool:
        """True when a single-write-port buffer per lane suffices."""
        return self.max_writes_per_lane_cycle <= 1

    @property
    def buffer_words(self) -> int:
        """Total buffer capacity across lanes."""
        return self.buffer_depth * self.width


class PermutationNetwork:
    """A ``width``-lane streaming permutation engine."""

    def __init__(self, width: int) -> None:
        if not is_power_of_two(width):
            raise PermutationError(f"width must be a power of two, got {width}")
        self.width = width
        self._permutation: np.ndarray | None = None
        self._schedule: RoutingSchedule | None = None

    # ---------------------------------------------------------------- config
    def configure(self, permutation: np.ndarray) -> RoutingSchedule:
        """Load a frame permutation; returns its routing schedule.

        ``permutation[i]`` is the *input* index emitted at output position
        ``i`` (gather convention).  The frame length must be a positive
        multiple of the lane width.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.ndim != 1 or perm.size == 0:
            raise PermutationError("permutation must be a non-empty 1-D array")
        if perm.size % self.width:
            raise PermutationError(
                f"frame length {perm.size} must be a multiple of width {self.width}"
            )
        check = np.sort(perm)
        if not np.array_equal(check, np.arange(perm.size)):
            raise PermutationError("not a permutation: indices must be a bijection")
        self._permutation = perm
        self._schedule = self._route(perm)
        return self._schedule

    @property
    def permutation(self) -> np.ndarray:
        if self._permutation is None:
            raise PermutationError("network not configured")
        return self._permutation

    @property
    def schedule(self) -> RoutingSchedule:
        if self._schedule is None:
            raise PermutationError("network not configured")
        return self._schedule

    # ------------------------------------------------------------- functional
    def permute(self, frame: np.ndarray) -> np.ndarray:
        """Apply the configured permutation to one or more frames.

        The last axis must equal the frame length.
        """
        perm = self.permutation
        data = np.asarray(frame)
        if data.shape[-1] != perm.size:
            raise PermutationError(
                f"frame length {data.shape[-1]} does not match configured "
                f"{perm.size}"
            )
        return data[..., perm]

    def permute_stream(self, stream: np.ndarray) -> np.ndarray:
        """Apply the permutation frame-by-frame to a long stream."""
        perm = self.permutation
        data = np.asarray(stream)
        if data.shape[-1] % perm.size:
            raise PermutationError(
                f"stream length {data.shape[-1]} is not a whole number of "
                f"{perm.size}-element frames"
            )
        shaped = data.reshape(*data.shape[:-1], -1, perm.size)
        return shaped[..., perm].reshape(data.shape)

    # ---------------------------------------------------------------- routing
    def _route(self, perm: np.ndarray) -> RoutingSchedule:
        frame = perm.size
        width = self.width
        out_pos = np.empty(frame, dtype=np.int64)
        out_pos[perm] = np.arange(frame)  # output position of each input index
        in_cycle = np.arange(frame) // width
        out_cycle = out_pos // width
        out_lane = out_pos % width

        # An element cannot leave before it has arrived: the whole frame's
        # output is delayed until every output cycle's elements are present.
        slack = in_cycle - out_cycle
        base_delay = int(max(0, slack.max()))

        # Occupancy of each lane buffer over time (arrival to departure).
        depth = 0
        writes = np.zeros((frame // width + base_delay + 1, width), dtype=np.int64)
        for idx in range(frame):
            writes[in_cycle[idx], out_lane[idx]] += 1
        max_writes = int(writes.max()) if frame else 1
        stalls = int(np.maximum(writes - 1, 0).sum())

        # Buffer residency: element waits (out_cycle + delay) - in_cycle.
        residency = out_cycle + base_delay - in_cycle
        if frame:
            # Per-lane peak simultaneous occupancy.
            for lane in range(width):
                lane_mask = out_lane == lane
                if not lane_mask.any():
                    continue
                events = []
                for idx in np.nonzero(lane_mask)[0]:
                    events.append((in_cycle[idx], 1))
                    events.append((out_cycle[idx] + base_delay + 1, -1))
                events.sort()
                occupancy = 0
                for _, delta in events:
                    occupancy += delta
                    depth = max(depth, occupancy)
        latency = base_delay + 1 + stalls
        del residency
        return RoutingSchedule(
            frame=frame,
            width=width,
            buffer_depth=max(depth, 1),
            latency_cycles=latency,
            stall_cycles=stalls,
            max_writes_per_lane_cycle=max(max_writes, 1),
        )

    def __repr__(self) -> str:
        state = "unconfigured" if self._permutation is None else f"frame={self._permutation.size}"
        return f"PermutationNetwork(width={self.width}, {state})"
