"""Data layouts: mappings from matrix coordinates to memory byte addresses.

A layout fixes where element ``(r, c)`` of an ``n_rows x n_cols`` complex
matrix lives in the linear memory address space.  The paper's contribution
is the *block dynamic data layout* (:class:`BlockDDLLayout`) together with
the closed-form block-height rule (:func:`optimal_block_geometry`,
paper Eq. 1).
"""

from repro.layouts.base import Layout
from repro.layouts.row_major import RowMajorLayout
from repro.layouts.column_major import ColumnMajorLayout
from repro.layouts.tiled import TiledLayout
from repro.layouts.block_ddl import BlockDDLLayout
from repro.layouts.optimizer import (
    BlockGeometry,
    LayoutRegime,
    optimal_block_geometry,
)

__all__ = [
    "BlockDDLLayout",
    "BlockGeometry",
    "ColumnMajorLayout",
    "Layout",
    "LayoutRegime",
    "RowMajorLayout",
    "TiledLayout",
    "optimal_block_geometry",
]
