"""Layout abstract base class and shared validation."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import LayoutError
from repro.units import ELEMENT_BYTES


class Layout(ABC):
    """Mapping from matrix coordinates to element-aligned byte addresses.

    A layout covers an ``n_rows x n_cols`` matrix of 8-byte complex elements
    stored contiguously in ``[base, base + footprint_bytes)``.  Subclasses
    implement :meth:`element_index` (and its vectorized twin), the linear
    element index within the footprint; the base class turns indices into
    byte addresses and provides the inverse used by round-trip tests.
    """

    def __init__(self, n_rows: int, n_cols: int, base: int = 0) -> None:
        if n_rows <= 0 or n_cols <= 0:
            raise LayoutError(f"matrix must be non-empty, got {n_rows}x{n_cols}")
        if base < 0 or base % ELEMENT_BYTES:
            raise LayoutError(f"base must be non-negative and aligned, got {base}")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.base = base

    # ----------------------------------------------------------- to implement
    @abstractmethod
    def element_index(self, row: int, col: int) -> int:
        """Linear element index of ``(row, col)`` within the footprint."""

    @abstractmethod
    def element_index_array(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`element_index`."""

    @abstractmethod
    def coordinate(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`element_index`."""

    # ------------------------------------------------------------- public API
    @property
    def n_elements(self) -> int:
        """Total elements covered."""
        return self.n_rows * self.n_cols

    @property
    def footprint_bytes(self) -> int:
        """Bytes occupied by the matrix under this layout."""
        return self.n_elements * ELEMENT_BYTES

    def address(self, row: int, col: int) -> int:
        """Byte address of element ``(row, col)``."""
        self._check_coordinate(row, col)
        return self.base + self.element_index(row, col) * ELEMENT_BYTES

    def address_array(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`address`; inputs broadcast together."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise LayoutError("row indices out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= self.n_cols):
            raise LayoutError("column indices out of range")
        return self.base + self.element_index_array(rows, cols) * ELEMENT_BYTES

    def coordinate_of_address(self, address: int) -> tuple[int, int]:
        """Matrix coordinate stored at an absolute byte address."""
        offset = address - self.base
        if offset < 0 or offset >= self.footprint_bytes:
            raise LayoutError(
                f"address {address:#x} outside footprint "
                f"[{self.base:#x}, {self.base + self.footprint_bytes:#x})"
            )
        if offset % ELEMENT_BYTES:
            raise LayoutError(f"address {address:#x} not element aligned")
        return self.coordinate(offset // ELEMENT_BYTES)

    def permutation_from(self, other: "Layout") -> np.ndarray:
        """Element permutation that reorganizes ``other``'s layout into this one.

        Entry ``p[i]`` is the element index *in this layout* of the element
        stored at index ``i`` in ``other``.  Both layouts must cover the same
        matrix geometry.  This is what the on-chip permutation network must
        realize to convert layouts dynamically.
        """
        if (other.n_rows, other.n_cols) != (self.n_rows, self.n_cols):
            raise LayoutError(
                "layouts cover different matrices: "
                f"{other.n_rows}x{other.n_cols} vs {self.n_rows}x{self.n_cols}"
            )
        rows, cols = np.divmod(
            np.arange(self.n_elements, dtype=np.int64), self.n_cols
        )
        # Where row-major coordinates land in each layout:
        mine = self.element_index_array(rows, cols)
        theirs = other.element_index_array(rows, cols)
        perm = np.empty(self.n_elements, dtype=np.int64)
        perm[theirs] = mine
        return perm

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{type(self).__name__}({self.n_rows}x{self.n_cols}, base={self.base:#x})"

    def __repr__(self) -> str:
        return self.describe()

    # --------------------------------------------------------------- internal
    def _check_coordinate(self, row: int, col: int) -> None:
        if not (0 <= row < self.n_rows):
            raise LayoutError(f"row {row} out of range 0..{self.n_rows - 1}")
        if not (0 <= col < self.n_cols):
            raise LayoutError(f"col {col} out of range 0..{self.n_cols - 1}")
