"""Column-major layout.

The mirror image of row-major: ideal for the column-wise FFT phase and
pathological for the row-wise phase.  Included because it demonstrates why
*no static layout* can serve both phases (paper Section 1) and as a
reference point in the layout-comparison benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.layouts.base import Layout


class ColumnMajorLayout(Layout):
    """Elements of a column are consecutive; columns follow each other."""

    def element_index(self, row: int, col: int) -> int:
        return col * self.n_rows + row

    def element_index_array(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return cols * np.int64(self.n_rows) + rows

    def coordinate(self, index: int) -> tuple[int, int]:
        col, row = divmod(index, self.n_rows)
        return row, col
