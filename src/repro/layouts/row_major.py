"""Row-major layout -- the paper's baseline storage order."""

from __future__ import annotations

import numpy as np

from repro.layouts.base import Layout


class RowMajorLayout(Layout):
    """Elements of a row are consecutive; rows follow each other.

    This is the natural output order of the row-wise FFT phase and the
    layout the baseline architecture keeps for the column-wise phase,
    turning every column access into a stride-``n_cols`` walk.
    """

    def element_index(self, row: int, col: int) -> int:
        return row * self.n_cols + col

    def element_index_array(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return rows * np.int64(self.n_cols) + cols

    def coordinate(self, index: int) -> tuple[int, int]:
        return divmod(index, self.n_cols)
