"""Tiled layout (Akin et al. [2], the related-work comparison point).

The matrix is divided into ``tile_rows x tile_cols`` tiles; tiles are
ordered row-major and the elements *within* a tile are row-major.  Akin et
al. size each tile to the DRAM row buffer so both FFT phases touch whole
rows, at the cost of on-chip transposition hardware.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LayoutError
from repro.layouts.base import Layout


class TiledLayout(Layout):
    """Row-major tiles with row-major interiors."""

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        tile_rows: int,
        tile_cols: int,
        base: int = 0,
    ) -> None:
        super().__init__(n_rows, n_cols, base)
        if tile_rows <= 0 or tile_cols <= 0:
            raise LayoutError(f"tile must be non-empty, got {tile_rows}x{tile_cols}")
        if n_rows % tile_rows or n_cols % tile_cols:
            raise LayoutError(
                f"tile {tile_rows}x{tile_cols} must evenly divide "
                f"matrix {n_rows}x{n_cols}"
            )
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.tiles_per_row_band = n_cols // tile_cols
        self.tile_elements = tile_rows * tile_cols

    def element_index(self, row: int, col: int) -> int:
        tile_r, in_r = divmod(row, self.tile_rows)
        tile_c, in_c = divmod(col, self.tile_cols)
        tile = tile_r * self.tiles_per_row_band + tile_c
        return tile * self.tile_elements + in_r * self.tile_cols + in_c

    def element_index_array(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        tile_r, in_r = np.divmod(rows, self.tile_rows)
        tile_c, in_c = np.divmod(cols, self.tile_cols)
        tile = tile_r * np.int64(self.tiles_per_row_band) + tile_c
        return tile * np.int64(self.tile_elements) + in_r * np.int64(self.tile_cols) + in_c

    def coordinate(self, index: int) -> tuple[int, int]:
        tile, inner = divmod(index, self.tile_elements)
        tile_r, tile_c = divmod(tile, self.tiles_per_row_band)
        in_r, in_c = divmod(inner, self.tile_cols)
        return tile_r * self.tile_rows + in_r, tile_c * self.tile_cols + in_c

    def describe(self) -> str:
        return (
            f"TiledLayout({self.n_rows}x{self.n_cols}, "
            f"tile={self.tile_rows}x{self.tile_cols}, base={self.base:#x})"
        )
