"""Optimal block geometry -- paper Eq. (1).

Given the memory timing parameters, the row-buffer capacity ``s`` (in
elements), the banks per vault ``b``, the number of vaults ``n_v`` a single
kernel stream engages, and the FFT problem dimension ``m`` (= N for an
N x N 2D FFT), the paper picks the block height ``h`` piecewise::

    h = n_v * s * b / m              if 0 < m <  s*b * t_in_row / t_diff_row
    h = n_v * t_diff_bank / t_in_row if      ... <= m < s*b
    h = n_v * t_diff_row  / t_in_row if m >= s*b

and ``w = s / h``.  The published equation is OCR-damaged; this module
implements the reconstruction argued in DESIGN.md: each case makes the
data streamed per row visit (``h`` elements at ``t_in_row`` each) cover the
activate-to-activate gap of the bank that serves the next block -- the
same-bank row cycle ``t_diff_row`` for large matrices (block columns stride
far enough to wrap onto one bank), the cross-bank ``t_diff_bank`` for
mid-size matrices, and a capacity-driven expression when the whole matrix
is small enough to spread across all banks.

The raw value is rounded **up** to a power of two (so ``w = s/h`` stays
integral) and clamped to ``[1, min(s, m)]``.  The trace-driven simulator
verifies that the resulting layout actually hides all activations
(benchmarks/bench_ablation_height.py sweeps ``h`` to show the knee).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError
from repro.memory3d.config import Memory3DConfig
from repro.units import next_power_of_two


class LayoutRegime(Enum):
    """Which piece of Eq. (1) applied."""

    SMALL_MATRIX = "small_matrix"
    CROSS_BANK = "cross_bank"
    SAME_BANK = "same_bank"


@dataclass(frozen=True)
class BlockGeometry:
    """Chosen block shape plus provenance.

    Attributes:
        width: block width ``w`` in matrix columns.
        height: block height ``h`` in matrix rows.
        raw_height: the un-rounded Eq. (1) value.
        regime: which piecewise case applied.
        row_elements: the row-buffer capacity the block fills.
    """

    width: int
    height: int
    raw_height: float
    regime: LayoutRegime
    row_elements: int

    @property
    def elements(self) -> int:
        """Elements per block (equals the row-buffer capacity)."""
        return self.width * self.height

    def hides_activation(self, config: Memory3DConfig, n_v: int = 1) -> bool:
        """True if ``h`` beats per visit cover the governing activate gap."""
        timing = config.timing
        gap = (
            timing.t_diff_row
            if self.regime is LayoutRegime.SAME_BANK
            else timing.t_diff_bank
        )
        return self.height * timing.t_in_row * max(n_v, 1) >= gap


def optimal_block_geometry(
    config: Memory3DConfig,
    problem_size: int,
    n_v: int = 1,
) -> BlockGeometry:
    """Apply paper Eq. (1) and return the block shape for an N x N 2D FFT.

    Args:
        config: the 3D memory whose timing parameters govern the choice.
        problem_size: the FFT dimension ``m`` (= N).
        n_v: vaults engaged in parallel by one kernel stream (paper's
            ``n_v``; the evaluated architecture dedicates one vault per
            stream, ``n_v = 1``).

    Returns:
        The chosen :class:`BlockGeometry`.

    Raises:
        ConfigError: on non-positive inputs.
    """
    if problem_size <= 0:
        raise ConfigError(f"problem_size must be positive, got {problem_size}")
    if n_v <= 0:
        raise ConfigError(f"n_v must be positive, got {n_v}")
    if n_v > config.vaults:
        raise ConfigError(
            f"n_v={n_v} exceeds the device's {config.vaults} vaults"
        )

    timing = config.timing
    s = config.row_elements
    b = config.banks_per_vault
    small_cutoff = s * b * timing.t_in_row / timing.t_diff_row

    if problem_size < small_cutoff:
        regime = LayoutRegime.SMALL_MATRIX
        raw = n_v * s * b / problem_size
    elif problem_size < s * b:
        regime = LayoutRegime.CROSS_BANK
        raw = n_v * timing.t_diff_bank / timing.t_in_row
    else:
        regime = LayoutRegime.SAME_BANK
        raw = n_v * timing.t_diff_row / timing.t_in_row

    height = next_power_of_two(max(1, round(raw)))
    if height < raw:
        height *= 2
    # A block cannot be taller than the matrix or the row buffer.
    height = min(height, s, next_power_of_two(problem_size))
    width = s // height
    return BlockGeometry(
        width=width,
        height=height,
        raw_height=raw,
        regime=regime,
        row_elements=s,
    )
