"""The paper's block dynamic data layout (DDL).

The matrix is reorganized into ``w x h`` blocks (``w`` columns wide,
``h`` rows tall) whose size equals one memory row buffer, so a block is
read or written with a single row activation.  Blocks are ordered
row-major (block row ``br`` outer, block column ``bc`` inner), which under
the chunk-interleaved address map of :mod:`repro.memory3d.address` gives:

* **phase 1 (writes)**: the controlling unit stages ``h`` FFT output rows
  on chip and writes the resulting block slab; consecutive blocks of a slab
  land in consecutive vaults, so writes stream at device bandwidth;
* **phase 2 (reads)**: all blocks of one *block column* land in the same
  vault (the block-row stride is a multiple of the vault count for the
  evaluated sizes), so ``n_v`` parallel column streams drive ``n_v``
  independent vaults, and within each vault a visit delivers ``h`` (or a
  whole block's worth of) elements per activation -- enough to hide the
  activate-to-activate gap when ``h`` satisfies paper Eq. (1).

Elements within a block are stored column-major, so the ``h`` same-column
elements of a block are consecutive bytes and a single-column visit is one
contiguous burst.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LayoutError
from repro.layouts.base import Layout


class BlockDDLLayout(Layout):
    """``w x h`` blocks, row-major block order, column-major interiors."""

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        width: int,
        height: int,
        base: int = 0,
    ) -> None:
        super().__init__(n_rows, n_cols, base)
        if width <= 0 or height <= 0:
            raise LayoutError(f"block must be non-empty, got w={width} h={height}")
        if n_rows % height or n_cols % width:
            raise LayoutError(
                f"block w={width} h={height} must evenly divide "
                f"matrix {n_rows}x{n_cols}"
            )
        self.width = width
        self.height = height
        self.block_elements = width * height
        self.blocks_per_row_band = n_cols // width
        self.n_block_rows = n_rows // height

    # --------------------------------------------------------------- mapping
    def block_index(self, block_row: int, block_col: int) -> int:
        """Linear index of a block (row-major block order)."""
        if not (0 <= block_row < self.n_block_rows):
            raise LayoutError(f"block row {block_row} out of range")
        if not (0 <= block_col < self.blocks_per_row_band):
            raise LayoutError(f"block col {block_col} out of range")
        return block_row * self.blocks_per_row_band + block_col

    def element_index(self, row: int, col: int) -> int:
        block_r, in_r = divmod(row, self.height)
        block_c, in_c = divmod(col, self.width)
        block = block_r * self.blocks_per_row_band + block_c
        return block * self.block_elements + in_c * self.height + in_r

    def element_index_array(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        block_r, in_r = np.divmod(rows, self.height)
        block_c, in_c = np.divmod(cols, self.width)
        block = block_r * np.int64(self.blocks_per_row_band) + block_c
        return block * np.int64(self.block_elements) + in_c * np.int64(self.height) + in_r

    def coordinate(self, index: int) -> tuple[int, int]:
        block, inner = divmod(index, self.block_elements)
        block_r, block_c = divmod(block, self.blocks_per_row_band)
        in_c, in_r = divmod(inner, self.height)
        return block_r * self.height + in_r, block_c * self.width + in_c

    # ------------------------------------------------------------ convenience
    def block_base_address(self, block_row: int, block_col: int) -> int:
        """Byte address of a block's first element."""
        block = self.block_index(block_row, block_col)
        return self.base + block * self.block_elements * 8

    def column_burst_address(self, block_row: int, col: int) -> int:
        """Byte address of the first of the ``height`` consecutive elements
        of matrix column ``col`` inside block row ``block_row``."""
        row = block_row * self.height
        return self.address(row, col)

    def staging_buffer_elements(self) -> int:
        """On-chip elements the controlling unit stages in phase 1.

        Writing whole blocks requires buffering ``height`` complete FFT
        output rows (double buffered) -- the data-reorganization cost the
        paper trades against bandwidth.
        """
        return 2 * self.height * self.n_cols

    def describe(self) -> str:
        return (
            f"BlockDDLLayout({self.n_rows}x{self.n_cols}, "
            f"w={self.width}, h={self.height}, base={self.base:#x})"
        )
