#!/usr/bin/env python3
"""Run the domain linter over the Python files a git diff touches.

This is the ``--changed-only`` entry point for hooks and CI:

* pre-commit:  ``python tools/lint_changed.py --cached``
* CI PR diff:  ``python tools/lint_changed.py --base "origin/$BASE_REF"``
* local:       ``python tools/lint_changed.py`` (working tree vs HEAD,
  untracked files included)

It resolves the changed file set with git, then invokes the in-process
equivalent of ``python -m repro lint <files>`` and exits with the same
code (0 clean, 2 findings / bad invocation).  Extra arguments after
``--`` are forwarded to the lint command (e.g. ``-- --format json``).

The per-file battery runs over the changed files only; when any changed
file lives under ``src/repro``, the project-wide (cross-module) rules
additionally run over the *whole* ``src/repro`` tree -- they reason
about locks, call graphs and schema producers across modules, so a
file-subset view would draw conclusions from a partial project.
``--skip-flow`` disables that second pass.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if SRC.is_dir() and str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main(argv: list[str] | None = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    forwarded: list[str] = []
    if "--" in raw:
        split = raw.index("--")
        raw, forwarded = raw[:split], raw[split + 1:]
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base",
        default="HEAD",
        help="git revision (or A...B range) to diff against",
    )
    parser.add_argument(
        "--cached",
        action="store_true",
        help="diff the index instead of the working tree (pre-commit)",
    )
    parser.add_argument(
        "--skip-flow",
        action="store_true",
        help="skip the project-wide rule pass over src/repro even when "
             "src/repro files changed",
    )
    args = parser.parse_args(raw)

    from repro.analysis import changed_python_files, rule_catalog
    from repro.cli import main as repro_main
    from repro.errors import ReproError

    try:
        files = changed_python_files(
            base=args.base, cached=args.cached, root=REPO_ROOT
        )
    except ReproError as exc:
        print(f"lint-changed: error: {exc}", file=sys.stderr)
        return 2
    files = [path for path in files if path.name != "conftest.py"]
    if not files:
        print("lint-changed: no changed Python files")
        return 0
    print(f"lint-changed: {len(files)} file(s) vs {args.base}")
    # Per-file battery over the changed subset; the cross-module pass is
    # meaningless on a partial view, so it is skipped here and (below)
    # re-run over the full src/repro tree when that tree changed at all.
    code = repro_main(
        ["lint", "--skip-flow", *forwarded, *(str(p) for p in files)]
    )
    src_repro = (REPO_ROOT / "src" / "repro").resolve()
    touched_repro = any(
        path.resolve().is_relative_to(src_repro) for path in files
    )
    if touched_repro and not args.skip_flow:
        project_rules = sorted(
            rule_id
            for rule_id, cls in rule_catalog().items()
            if cls.scope == "project"
        )
        print(
            "lint-changed: src/repro changed; running project-wide rules "
            f"({', '.join(project_rules)}) over the full tree"
        )
        # Path before --rules: the option is nargs="+" and would
        # otherwise swallow the positional.
        flow_code = repro_main(
            ["lint", str(src_repro), "--rules", *project_rules]
        )
        code = code or flow_code
    return code


if __name__ == "__main__":
    sys.exit(main())
