#!/usr/bin/env python3
"""Exact-vs-vector timing engine equivalence gate.

Builds the full corpus -- every layout family x device config x trace
generator, under both scheduling disciplines, healthy and under every
builtin fault plan, as raw request arrays and as compiled run
descriptors -- prices each case on both engines and demands:

* **stat-for-stat equality**: the two :class:`AccessStats` compare
  ``==`` (not approximately; both engines share the integer-picosecond
  timebase, so agreement is exact or it is a bug);
* **fault-accounting equality**: the compiled fault summaries match
  field for field;
* **event-count equality**: the vector engine's aggregate
  activation/row-hit counters equal the number of ACTIVATE / ROW_HIT
  events the exact engine emits to a recorder.

A structured JSON report (one record per case) is always written; the
exit status is nonzero iff any case disagrees.  CI runs this as the
``engine-equivalence`` job and uploads the report as an artifact on
failure.

Usage::

    python tools/check_engine_equivalence.py [--report engine-equivalence-report.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    BlockDDLLayout,
    ColumnMajorLayout,
    EventTrace,
    Memory3D,
    RowMajorLayout,
    TiledLayout,
    TraceArray,
    block_column_read_trace,
    block_write_trace,
    column_walk_trace,
    compile_trace,
    row_walk_trace,
)
from repro.faults.plan import builtin_fault_plans  # noqa: E402
from repro.memory3d.config import (  # noqa: E402
    hmc_gen2_config,
    pact15_hmc_config,
    wideio_like_config,
)
from repro.trace.generators import (  # noqa: E402
    linear_trace,
    strided_trace,
    tiled_walk_trace,
)

#: Matrix edge for the corpus layouts: big enough to span banks, rows
#: and block seams on every config, small enough that the exact engine
#: prices the whole corpus in seconds.
N = 64


def build_traces() -> dict[str, TraceArray]:
    """The trace corpus: one entry per generator x layout family."""
    rm = RowMajorLayout(N, N)
    cm = ColumnMajorLayout(N, N)
    tiled = TiledLayout(N, N, 16, 16)
    ddl = BlockDDLLayout(N, N, width=16, height=16)
    rng = np.random.default_rng(20150214)
    random_addr = rng.integers(0, (N * N), size=N * N, dtype=np.int64) * 8
    arrivals = np.cumsum(rng.uniform(0.0, 3.0, size=N * N))
    traces = {
        "linear": linear_trace(0, N * N),
        "strided-row": strided_trace(0, N * N, N * 8),
        "strided-bank": strided_trace(0, 2048, 1 << 15),
        "row-walk-rm": row_walk_trace(rm),
        "col-walk-rm": column_walk_trace(rm),
        "row-walk-cm": row_walk_trace(cm),
        "col-walk-cm": column_walk_trace(cm),
        "tiled-walk": tiled_walk_trace(tiled, 16, 16),
        "col-walk-tiled": column_walk_trace(tiled),
        "ddl-block-write": block_write_trace(ddl),
        "ddl-block-read": block_column_read_trace(ddl, n_streams=4),
        "ddl-narrow-read": block_column_read_trace(
            ddl, n_streams=4, whole_blocks=False
        ),
        "random": TraceArray(random_addr),
        "linear-arrivals": TraceArray(
            linear_trace(0, N * N).addresses, arrival_ns=arrivals
        ),
    }
    return traces


def build_configs() -> dict[str, Any]:
    """Device configs under test (the paper's part plus two variants)."""
    return {
        "pact15-hmc": pact15_hmc_config(),
        "hmc-gen2": hmc_gen2_config(),
        "wideio": wideio_like_config(),
    }


def _stats_dict(stats: Any) -> dict[str, Any]:
    """JSON-able dump of an AccessStats for the diff report."""
    return {
        "requests": stats.requests,
        "bytes_transferred": stats.bytes_transferred,
        "elapsed_ns": stats.elapsed_ns,
        "row_activations": stats.row_activations,
        "row_hits": stats.row_hits,
        "per_vault_busy_ns": {str(k): v for k, v in stats.per_vault_busy_ns.items()},
        "first_response_ns": stats.first_response_ns,
        "mean_request_latency_ns": stats.mean_request_latency_ns,
        "max_request_latency_ns": stats.max_request_latency_ns,
    }


def compare_case(
    config: Any,
    trace: Any,
    discipline: str,
    plan: Any,
) -> dict[str, Any]:
    """Price one corpus case on both engines; return the case record."""
    mem_exact = Memory3D(config)
    mem_vector = Memory3D(config)
    exact = mem_exact.simulate(
        trace, discipline=discipline, fault_plan=plan, engine="exact"
    )
    exact_summary = mem_exact.last_fault_summary if plan is not None else None
    vector = mem_vector.simulate(
        trace, discipline=discipline, fault_plan=plan, engine="vector"
    )
    vector_summary = mem_vector.last_fault_summary if plan is not None else None

    record: dict[str, Any] = {
        "engine_used": mem_vector.last_engine,
        "fallback_reason": mem_vector.last_fallback_reason,
        "stats_equal": exact == vector,
        "summary_equal": exact_summary == vector_summary,
    }
    if not record["stats_equal"]:
        record["exact"] = _stats_dict(exact)
        record["vector"] = _stats_dict(vector)
    if not record["summary_equal"]:
        record["exact_summary"] = exact_summary
        record["vector_summary"] = vector_summary

    # Event-count cross-check (healthy runs: the recorder itself forces
    # the exact engine, so we compare its event tally to the vector
    # engine's aggregate counters).
    if plan is None:
        recorder = EventTrace()
        Memory3D(config, recorder=recorder).simulate(trace, discipline=discipline)
        counts = recorder.counts()
        record["events_equal"] = (
            counts.get("ACTIVATE", 0) == vector.row_activations
            and counts.get("ROW_HIT", 0) == vector.row_hits
        )
        if not record["events_equal"]:
            record["exact_events"] = counts
            record["vector_counts"] = {
                "ACTIVATE": vector.row_activations,
                "ROW_HIT": vector.row_hits,
            }
    else:
        record["events_equal"] = True
    record["ok"] = bool(
        record["stats_equal"] and record["summary_equal"] and record["events_equal"]
    )
    return record


def run_corpus() -> tuple[list[dict[str, Any]], dict[str, int]]:
    """Run every corpus case; return (records, tally)."""
    traces = build_traces()
    configs = build_configs()
    plans: dict[str, Any] = {"healthy": None}
    plans.update(builtin_fault_plans(seed=7))

    records: list[dict[str, Any]] = []
    tally = {"cases": 0, "failed": 0, "vector_priced": 0, "fallbacks": 0}
    for config_name, config in configs.items():
        for trace_name, trace in traces.items():
            for form in ("array", "compiled"):
                run_trace = compile_trace(trace) if form == "compiled" else trace
                for discipline in ("in_order", "per_vault"):
                    for plan_name, plan in plans.items():
                        if plan_name == "vault-failure" and config.vaults < 16:
                            # The builtin plan kills vaults 0/5/10/15.
                            continue
                        record = compare_case(config, run_trace, discipline, plan)
                        record.update(
                            config=config_name,
                            trace=trace_name,
                            form=form,
                            discipline=discipline,
                            plan=plan_name,
                        )
                        records.append(record)
                        tally["cases"] += 1
                        if not record["ok"]:
                            tally["failed"] += 1
                        if record["engine_used"] == "vector":
                            tally["vector_priced"] += 1
                        else:
                            tally["fallbacks"] += 1
    return records, tally


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        default="engine-equivalence-report.json",
        help="where to write the structured JSON diff report",
    )
    args = parser.parse_args(argv)

    records, tally = run_corpus()
    failures = [r for r in records if not r["ok"]]
    report = {
        "tally": tally,
        "failures": failures,
        "cases": records,
    }
    Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True))

    print(
        f"engine equivalence: {tally['cases']} cases, "
        f"{tally['vector_priced']} vector-priced, "
        f"{tally['fallbacks']} exact fallbacks, "
        f"{tally['failed']} failed"
    )
    if failures:
        for rec in failures[:10]:
            print(
                f"  MISMATCH {rec['config']}/{rec['trace']}/{rec['form']}"
                f"/{rec['discipline']}/{rec['plan']}: "
                f"stats_equal={rec['stats_equal']} "
                f"summary_equal={rec['summary_equal']} "
                f"events_equal={rec['events_equal']}"
            )
        print(f"report: {args.report}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
