#!/usr/bin/env python3
"""Load-shedding smoke gate for ``repro serve``.

Launches the real CLI (``python -m repro serve``) as a subprocess,
overloads it with a synchronized burst of concurrent plan requests, and
demands the issue's overload semantics end to end:

* the burst overflows the (deliberately tiny) admission queue, so at
  least one request is shed with **429 + a ``Retry-After`` header**;
* every *accepted* request completes cleanly -- **zero 5xx**; accepted
  work is never lost or double-executed (the response envelopes'
  ``request_id``\\ s are distinct, their documents identical);
* a ``/metrics`` scrape parses as valid OpenMetrics and reports the
  shed count (dumped to ``load-smoke-metrics.prom`` as a CI artifact);
* **every response carries a trace** -- accepted and shed envelopes
  alike expose a 32-hex ``trace_id`` (PR 10 end-to-end tracing);
* ``GET /debug/bundle`` returns a valid flight-recorder bundle
  (dumped to ``load-smoke-bundle.json`` as a CI artifact);
* **SIGTERM drains cleanly**: the server exits 0 within the drain
  budget and leaves a ``flight-sigterm.json`` forensic bundle behind.

A JSON report of every response lands in ``load-smoke-report.json``.
Exit status: 0 when every property holds, 1 otherwise.

Usage::

    python tools/load_smoke.py [--burst 12] [--queue-limit 2] [--n 256]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.flight import load_flight_bundle, validate_flight_bundle  # noqa: E402
from repro.obs.openmetrics import parse_openmetrics  # noqa: E402


def is_trace_id(value: Any) -> bool:
    """True when ``value`` looks like a 32-hex W3C trace id."""
    return (
        isinstance(value, str)
        and len(value) == 32
        and all(ch in "0123456789abcdef" for ch in value)
    )


def free_port() -> int:
    """An ephemeral TCP port that was free a moment ago."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_healthy(url: str, deadline_s: float = 20.0) -> None:
    """Poll ``/healthz`` until the server answers (or give up loudly)."""
    # Host time on purpose: this tool supervises a real server process.
    deadline = time.monotonic() + deadline_s  # repro: ignore[DET001]
    while True:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2.0):
                return
        except (urllib.error.URLError, OSError):
            if time.monotonic() >= deadline:  # repro: ignore[DET001]
                raise SystemExit(f"server at {url} never became healthy")
            time.sleep(0.1)


def post_plan(url: str, spec: dict[str, Any]) -> dict[str, Any]:
    """One ``POST /plan``; returns ``{code, headers, body}``."""
    body = json.dumps(spec).encode("utf-8")
    request = urllib.request.Request(
        url + "/plan", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=120.0) as response:
            return {
                "code": response.status,
                "headers": dict(response.headers),
                "body": json.loads(response.read()),
            }
    except urllib.error.HTTPError as exc:
        return {
            "code": exc.code,
            "headers": dict(exc.headers),
            "body": json.loads(exc.read()),
        }


def fire_burst(
    url: str, spec: dict[str, Any], burst: int
) -> list[dict[str, Any]]:
    """``burst`` synchronized concurrent requests; returns all responses."""
    barrier = threading.Barrier(burst)
    responses: list[dict[str, Any]] = []
    lock = threading.Lock()

    def shoot() -> None:
        barrier.wait()
        response = post_plan(url, spec)
        with lock:
            responses.append(response)

    threads = [threading.Thread(target=shoot) for _ in range(burst)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
    return responses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--burst", type=int, default=12,
                        help="concurrent requests in the overload burst")
    parser.add_argument("--queue-limit", type=int, default=2,
                        help="server admission bound (small = easy to shed)")
    parser.add_argument("--n", type=int, default=256,
                        help="matrix size of the planned workload")
    parser.add_argument("--max-requests", type=int, default=4096,
                        help="simulated request budget per point")
    parser.add_argument("--report", default="load-smoke-report.json",
                        help="where to write the JSON response report")
    parser.add_argument("--metrics-out", default="load-smoke-metrics.prom",
                        help="where to dump the OpenMetrics scrape")
    parser.add_argument("--bundle-out", default="load-smoke-bundle.json",
                        help="where to dump the on-demand /debug/bundle")
    parser.add_argument("--flight-dir", default="load-smoke-flight",
                        help="server-side directory for flight-recorder dumps")
    args = parser.parse_args(argv)

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--queue-limit", str(args.queue_limit),
            "--jobs", "2",
            "--no-cache",
            "--drain", "30",
            "--flight-dir", args.flight_dir,
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    checks: list[tuple[str, bool, str]] = []
    responses: list[dict[str, Any]] = []
    try:
        wait_healthy(url)
        spec = {"n": args.n, "max_requests": args.max_requests}
        responses = fire_burst(url, spec, args.burst)

        shed = [r for r in responses if r["code"] == 429]
        ok = [r for r in responses if r["code"] == 200]
        fivexx = [r for r in responses if 500 <= r["code"] <= 599]
        checks.append((
            "burst fully answered",
            len(responses) == args.burst,
            f"{len(responses)}/{args.burst} responses",
        ))
        checks.append((
            ">=1 request shed with 429",
            len(shed) >= 1,
            f"{len(shed)} shed",
        ))
        checks.append((
            "every 429 carries Retry-After",
            all("Retry-After" in r["headers"] for r in shed),
            f"{sum('Retry-After' in r['headers'] for r in shed)}/{len(shed)}",
        ))
        checks.append((
            "zero 5xx on accepted requests",
            not fivexx,
            f"{len(fivexx)} server errors",
        ))
        request_ids = [r["body"].get("request_id") for r in ok]
        documents = {
            json.dumps(r["body"].get("document"), sort_keys=True) for r in ok
        }
        checks.append((
            "accepted answers distinct-by-id, identical-by-document",
            len(ok) >= 1
            and len(set(request_ids)) == len(request_ids)
            and len(documents) == 1,
            f"{len(ok)} accepted, {len(set(request_ids))} ids, "
            f"{len(documents)} distinct documents",
        ))

        traced = [r for r in responses if is_trace_id(r["body"].get("trace_id"))]
        checks.append((
            "every response (200 and 429) carries a trace_id",
            len(traced) == len(responses),
            f"{len(traced)}/{len(responses)} traced envelopes",
        ))
        header_traced = sum(
            "Traceparent" in r["headers"] or "traceparent" in r["headers"]
            for r in responses
        )
        checks.append((
            "every response carries a traceparent header",
            header_traced == len(responses),
            f"{header_traced}/{len(responses)} traceparent headers",
        ))

        with urllib.request.urlopen(url + "/debug/bundle", timeout=10.0) as resp:
            bundle = json.loads(resp.read())
        Path(args.bundle_out).write_text(
            json.dumps(bundle, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        try:
            validate_flight_bundle(bundle)
            bundle_ok, bundle_detail = True, (
                f"trigger={bundle['trigger']}, "
                f"{len(bundle['sections'])} sections"
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            bundle_ok, bundle_detail = False, f"{type(exc).__name__}: {exc}"
        checks.append((
            "/debug/bundle returns a valid flight bundle",
            bundle_ok,
            bundle_detail,
        ))

        with urllib.request.urlopen(url + "/metrics", timeout=5.0) as resp:
            exposition = resp.read().decode("utf-8")
        Path(args.metrics_out).write_text(exposition, encoding="utf-8")
        families = parse_openmetrics(exposition)
        shed_total = families["serve_shed"]["samples"]["serve_shed_total"]
        checks.append((
            "metrics parse and report the sheds",
            shed_total >= len(shed) >= 1,
            f"serve_shed_total={shed_total}",
        ))

        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=60.0)
        except subprocess.TimeoutExpired:
            code = None
        checks.append((
            "SIGTERM drains cleanly (exit 0)",
            code == 0,
            f"exit code {code}",
        ))

        sigterm_bundle = REPO_ROOT / args.flight_dir / "flight-sigterm.json"
        try:
            load_flight_bundle(str(sigterm_bundle))
            sigterm_ok, sigterm_detail = True, str(sigterm_bundle)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            sigterm_ok, sigterm_detail = False, f"{type(exc).__name__}: {exc}"
        checks.append((
            "SIGTERM leaves a valid flight-sigterm.json bundle",
            sigterm_ok,
            sigterm_detail,
        ))
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10.0)
        Path(args.report).write_text(
            json.dumps(
                {
                    "checks": [
                        {"check": name, "ok": good, "detail": detail}
                        for name, good, detail in checks
                    ],
                    "responses": [
                        {"code": r["code"], "body": r["body"]}
                        for r in responses
                    ],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    failed = [name for name, good, _ in checks if not good]
    for name, good, detail in checks:
        print(f"  [{'ok' if good else 'FAIL':>4s}] {name}: {detail}")
    if failed:
        print(f"load smoke: FAILED ({len(failed)} checks)")
        return 1
    print("load smoke: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
