#!/usr/bin/env python
"""Benchmark-regression gate: fresh BENCH_*.json vs committed baselines.

CI's bench job runs the benchmark suite (each file writes a
``BENCH_<name>.json`` artifact), then calls this tool to compare every
fresh artifact against the committed baseline of the same name under
``benchmarks/baselines/``::

    python tools/check_bench.py BENCH_sweep.json BENCH_observability.json

A baseline is a tolerance band, not a golden number -- wall-clock values
vary across runners, so bounds gate *ratios* (speedups, overhead
factors) and only sanity-cap absolute times.  Baseline schema::

    {
      "benchmark": "sweep",
      "metrics": {
        "parallel_speedup": {"min": 2.0, "require_cores": 4},
        "cache_speedup":    {"min": 5.0},
        "serial_s":         {"max": 120.0}
      }
    }

Each rule may set ``min`` and/or ``max`` (inclusive bounds) and
``require_cores``: when the fresh artifact reports fewer CPU cores than
required (metric ``cores`` or info key ``cores``), the rule is skipped
rather than failed -- a 2x-parallel-speedup demand is meaningless on a
single-core box.  A baseline metric missing from the fresh artifact
fails the gate: silently dropping a measurement is itself a regression.

``--check-coverage`` additionally scans ``benchmarks/bench_*.py`` and
fails when a benchmark file has no committed baseline of the matching
name (``bench_engine.py`` -> ``baselines/BENCH_engine.json``), so a new
benchmark cannot land without a regression band.  Benchmarks that
predate the gate are grandfathered in ``LEGACY_UNGATED``; do not add new
entries -- write a baseline instead.

Exit status: 0 when every rule holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

#: Where committed baselines live, relative to the repository root.
DEFAULT_BASELINE_DIR = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
)

#: Where the benchmark files themselves live.
DEFAULT_BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: Benchmarks that predate the coverage gate and have no baseline yet.
#: Frozen: new benchmarks must ship a ``baselines/BENCH_<name>.json``
#: band instead of growing this list.
LEGACY_UNGATED = frozenset(
    {
        "ablation_height",
        "ablation_timing",
        "ablation_vaults",
        "energy",
        "fft3d",
        "fft_kernel",
        "framework",
        "interference",
        "layout_comparison",
        "load_latency",
        "matmul",
        "memory_engines",
        "permutation",
        "pipeline",
        "quantization",
        "scheduler",
        "table1",
        "table2",
        "technology",
        "validation",
    }
)


def check_coverage(
    bench_dir: Path, baseline_dir: Path
) -> list[tuple[str, str, str]]:
    """One row per ``bench_*.py``: does a committed baseline exist?"""
    rows: list[tuple[str, str, str]] = []
    for bench in sorted(bench_dir.glob("bench_*.py")):
        name = bench.stem.removeprefix("bench_")
        baseline = baseline_dir / f"BENCH_{name}.json"
        if baseline.is_file():
            rows.append((name, f"baseline {baseline.name}", "ok"))
        elif name in LEGACY_UNGATED:
            rows.append(
                (name, "legacy benchmark, no baseline (grandfathered)", "skip")
            )
        else:
            rows.append(
                (
                    name,
                    f"{bench.name} has no committed {baseline.name} "
                    "(new benchmarks must ship a regression band)",
                    "FAIL",
                )
            )
    return rows


class CheckFailure(Exception):
    """A malformed artifact or baseline (distinct from a regression)."""


def load_json(path: Path) -> dict[str, Any]:
    """Read a JSON object from ``path`` with actionable errors."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise CheckFailure(f"{path}: not found") from exc
    except json.JSONDecodeError as exc:
        raise CheckFailure(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise CheckFailure(f"{path}: expected a JSON object")
    return data


def fresh_cores(fresh: dict[str, Any]) -> int | None:
    """CPU core count reported by the fresh artifact, if any."""
    metrics = fresh.get("metrics", {})
    if isinstance(metrics.get("cores"), (int, float)):
        return int(metrics["cores"])
    info = fresh.get("info", {})
    if isinstance(info.get("cores"), (int, float)):
        return int(info["cores"])
    return None


def check_artifact(
    fresh_path: Path, baseline_path: Path
) -> list[tuple[str, str, str]]:
    """Compare one artifact; returns (metric, detail, status) rows.

    Status is ``ok``, ``skip`` or ``FAIL``.
    """
    fresh = load_json(fresh_path)
    baseline = load_json(baseline_path)
    rules = baseline.get("metrics")
    if not isinstance(rules, dict) or not rules:
        raise CheckFailure(f"{baseline_path}: no metrics rules")
    metrics = fresh.get("metrics")
    if not isinstance(metrics, dict):
        raise CheckFailure(f"{fresh_path}: no metrics")
    cores = fresh_cores(fresh)
    rows: list[tuple[str, str, str]] = []
    for name, rule in sorted(rules.items()):
        if not isinstance(rule, dict):
            raise CheckFailure(f"{baseline_path}: rule {name!r} must be an object")
        unknown = set(rule) - {"min", "max", "require_cores"}
        if unknown:
            raise CheckFailure(
                f"{baseline_path}: rule {name!r} has unknown keys {sorted(unknown)}"
            )
        required = rule.get("require_cores")
        if required is not None and (cores is None or cores < required):
            rows.append(
                (name, f"needs >= {required} cores, runner has {cores}", "skip")
            )
            continue
        if name not in metrics:
            rows.append((name, "missing from fresh artifact", "FAIL"))
            continue
        value = metrics[name]
        if not isinstance(value, (int, float)):
            rows.append((name, f"non-numeric value {value!r}", "FAIL"))
            continue
        bounds = []
        ok = True
        if "min" in rule:
            bounds.append(f">= {rule['min']}")
            ok = ok and value >= rule["min"]
        if "max" in rule:
            bounds.append(f"<= {rule['max']}")
            ok = ok and value <= rule["max"]
        detail = f"{value:.4g} (want {' and '.join(bounds) or 'anything'})"
        rows.append((name, detail, "ok" if ok else "FAIL"))
    return rows


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="*",
        type=Path,
        help="freshly produced BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory of committed baseline JSON files",
    )
    parser.add_argument(
        "--check-coverage",
        action="store_true",
        help="fail when a bench_*.py has no committed baseline",
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=DEFAULT_BENCH_DIR,
        help="directory of bench_*.py files (for --check-coverage)",
    )
    args = parser.parse_args(argv)
    if not args.fresh and not args.check_coverage:
        parser.error("nothing to do: pass fresh artifacts or --check-coverage")
    failed = False
    if args.check_coverage:
        print(f"baseline coverage of {args.bench_dir}/bench_*.py:")
        coverage_rows = check_coverage(args.bench_dir, args.baseline_dir)
        for name, detail, status in coverage_rows:
            print(f"  [{status:>4s}] {name}: {detail}")
            if status == "FAIL":
                failed = True
    for fresh_path in args.fresh:
        baseline_path = args.baseline_dir / fresh_path.name
        try:
            rows = check_artifact(fresh_path, baseline_path)
        except CheckFailure as exc:
            print(f"ERROR: {exc}")
            failed = True
            continue
        print(f"{fresh_path.name} vs {baseline_path}:")
        for name, detail, status in rows:
            print(f"  [{status:>4s}] {name}: {detail}")
            if status == "FAIL":
                failed = True
    if failed:
        print("benchmark regression gate: FAILED")
        return 1
    print("benchmark regression gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
