#!/usr/bin/env python
"""Matrix multiplication on the 3D MI-FPGA (companion papers [13, 14]).

The dynamic-layout lesson is not FFT-specific.  The streaming-panel
matmul keeps a panel of A rows on chip and streams all of B past it
column by column, so B's layout plays exactly the role the intermediate
matrix's layout plays in the 2D FFT.  This example multiplies real
matrices through every B layout (verifying against numpy) and compares
the resulting GFLOP/s.

Run:  python examples/streaming_matmul.py
"""

import numpy as np

from repro import MatMulArchitecture, matmul_baseline, matmul_optimized


def main() -> None:
    # ------------------------------------------------- functional check
    n = 128
    rng = np.random.default_rng(9)
    a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    b = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    want = a @ b
    print(f"{n}x{n} complex matmul through each B layout:")
    for layout in ("row-major", "column-major", "block-ddl"):
        arch = MatMulArchitecture(n, b_layout=layout)
        err = np.max(np.abs(arch.compute(a, b) - want))
        print(f"  {layout:13s}: max |error| vs numpy = {err:.2e}")
    print()

    # ------------------------------------------------ performance survey
    big = 2048
    print(f"{big}x{big} streaming-panel matmul, trace-driven evaluation:")
    baseline = matmul_baseline(big).evaluate()
    optimized = matmul_optimized(big).evaluate()
    for name, metrics in (("row-major B", baseline), ("block-DDL B", optimized)):
        print(
            f"  {name:12s}: {metrics.gflops:7.1f} GFLOP/s "
            f"({metrics.bound}-bound; B streams at "
            f"{metrics.b_stream_bandwidth / 1e9:.1f} GB/s; "
            f"total {metrics.time_ns / 1e6:.2f} ms)"
        )
    print(f"  layout speedup: {optimized.speedup_over(baseline):.1f}x")


if __name__ == "__main__":
    main()
