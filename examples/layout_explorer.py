#!/usr/bin/env python
"""Layout explorer: see where the data actually lands in the stack.

Prints, for a small matrix, the (vault, bank) each element maps to under
row-major and under the block DDL -- making the paper's core idea visible:
a column walk under row-major hammers one vault/bank pair with row misses,
while under the DDL each block column becomes a private streaming channel
into one vault.  Then sweeps the block height to show the Eq. (1) knee.

Run:  python examples/layout_explorer.py
"""

from repro import (
    BlockDDLLayout,
    Memory3D,
    RowMajorLayout,
    block_column_read_trace,
    column_walk_trace,
    optimal_block_geometry,
    pact15_hmc_config,
)
from repro.layouts.base import Layout


def vault_map(layout: Layout, memory: Memory3D, rows: int, cols: int) -> str:
    """ASCII map: hex vault id of each element's home."""
    lines = []
    for r in range(rows):
        cells = []
        for c in range(cols):
            decoded = memory.mapping.decode(layout.address(r, c))
            cells.append(f"{decoded.vault:x}")
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    config = pact15_hmc_config()
    memory = Memory3D(config)
    n = 64

    print(f"Vault map of a {n}x{n} matrix (one hex digit per element)\n")
    print("row-major layout (rows sweep the vaults left to right):")
    print(vault_map(RowMajorLayout(n, n), memory, rows=8, cols=64))
    print()

    # At the paper's sizes a row is a multiple of 16 row-buffer chunks, so
    # a column walk revisits ONE vault forever; show that fact numerically.
    big = RowMajorLayout(2048, 2048)
    vaults_hit = {
        memory.mapping.decode(big.address(r, 0)).vault for r in range(64)
    }
    print("N=2048: the first 64 accesses of a column walk touch vaults "
          f"{sorted(vaults_hit)} -- a single vault, activation after "
          f"activation.\n")

    geo = optimal_block_geometry(config, n)
    ddl = BlockDDLLayout(n, n, geo.width, geo.height)
    print(
        f"block DDL (w={geo.width}, h={geo.height}, regime={geo.regime.value}): "
        "block columns own vaults:"
    )
    print(vault_map(ddl, memory, rows=8, cols=64))
    print()

    # ----------------------------------------------------- measured impact
    base_trace = column_walk_trace(RowMajorLayout(2048, 2048), cols=range(4))
    base = memory.simulate(base_trace, "in_order", sample=65_536)
    print(
        f"row-major column walk (N=2048): {base.bandwidth_gbps:5.2f} GB/s, "
        f"row-hit rate {base.row_hit_rate:.0%}"
    )

    print("\nblock-height sweep, column-at-a-time consumer (N=2048):")
    geo_2048 = optimal_block_geometry(config, 2048)
    for h in (1, 2, 4, 8, 16, 32):
        layout = BlockDDLLayout(2048, 2048, width=32 // h, height=h)
        trace = block_column_read_trace(
            layout, n_streams=16, whole_blocks=False, block_cols=range(16)
        )
        stats = memory.simulate(trace, "per_vault", sample=65_536)
        util = stats.utilization(config.peak_bandwidth)
        marker = "  <- Eq. (1) optimum" if h == geo_2048.height else ""
        print(f"  h={h:2d}: {stats.bandwidth_gbps:6.2f} GB/s "
              f"({util:6.1%} of peak){marker}")


if __name__ == "__main__":
    main()
