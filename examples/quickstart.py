#!/usr/bin/env python
"""Quickstart: the paper in sixty lines.

Builds the paper-calibrated system, regenerates Tables 1 and 2 from the
analytic model, validates one size with the trace-driven simulator, and
computes a real 2D FFT through the optimized architecture's full data
path (layouts, permutation network, memory image), checking the result
against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AnalyticModel,
    BaselineArchitecture,
    OptimizedArchitecture,
    format_table1,
    format_table2,
    pact15_hmc_config,
)


def main() -> None:
    # ----------------------------------------------------------- the device
    memory = pact15_hmc_config()
    print(memory.describe())
    print()

    # ------------------------------------------------- the paper's two tables
    model = AnalyticModel()
    print(format_table1(model.table1()))
    print()
    print(format_table2(model.table2()))
    print()

    # ------------------------------------- trace-driven validation (N = 1024)
    n = 1024
    baseline = BaselineArchitecture(n).evaluate(max_requests=131_072)
    optimized = OptimizedArchitecture(n).evaluate(max_requests=131_072)
    print(f"Simulated N={n}:")
    print(
        f"  baseline : {baseline.throughput_gbps:6.2f} GB/s "
        f"(column phase {baseline.column_phase.bound}-bound)"
    )
    print(
        f"  optimized: {optimized.throughput_gbps:6.2f} GB/s "
        f"(column phase {optimized.column_phase.bound}-bound), "
        f"improvement {optimized.improvement_over(baseline):.1f}%"
    )
    print()

    # ------------------------------------------ an actual FFT, end to end
    arch = OptimizedArchitecture(256)
    rng = np.random.default_rng(0)
    data = rng.standard_normal((256, 256)) + 1j * rng.standard_normal((256, 256))
    result = arch.compute(data)
    error = np.max(np.abs(result - np.fft.fft2(data)))
    print(
        "256x256 2D FFT through the optimized data path "
        f"(block w={arch.geometry.width}, h={arch.geometry.height}): "
        f"max |error| vs numpy = {error:.2e}"
    )


if __name__ == "__main__":
    main()
