#!/usr/bin/env python
"""Signal processing on the 3D MI-FPGA: radar range-Doppler maps.

A pulse-Doppler radar collects a matrix of samples -- fast time (range)
along rows, slow time (pulse number) along columns.  Producing a
range-Doppler map is exactly the paper's workload: a 1D FFT along every
row, then a 1D FFT along every column, with the two phases demanding
conflicting memory layouts.  This example synthesises echoes from moving
targets with the library's radar toolkit (``repro.apps.radar``), forms
the map through the optimized architecture's data path, detects the
targets, and reports how many coherent processing intervals per second
each architecture would sustain.

Run:  python examples/radar_range_doppler.py
"""

from repro import AnalyticModel, OptimizedArchitecture
from repro.apps import (
    RadarTarget,
    detect_peaks,
    range_doppler_map,
    synthesize_returns,
)


def main() -> None:
    n = 256
    targets = [
        RadarTarget(range_bin=40, doppler_bin=200, amplitude=1.0),
        RadarTarget(range_bin=130, doppler_bin=60, amplitude=0.7),
        RadarTarget(range_bin=220, doppler_bin=220, amplitude=0.5),
    ]
    cpi = synthesize_returns(n, targets, noise_std=0.05, seed=5)

    # Range-Doppler map = 2D FFT of the pulse/range matrix, through the
    # optimized architecture (row FFTs = range compression, column FFTs =
    # Doppler processing).
    arch = OptimizedArchitecture(n)
    power_db = range_doppler_map(cpi, architecture=arch)

    detections = detect_peaks(power_db, rel_threshold_db=9.0)
    print(f"Range-Doppler processing of a {n}-pulse x {n}-gate CPI")
    print("  injected targets  (doppler, range): "
          f"{[(t.doppler_bin, t.range_bin) for t in targets]}")
    print(f"  detected cells within 9 dB of peak: {sorted(detections)}")
    found = all(
        (t.doppler_bin, t.range_bin) in detections for t in targets
    )
    print(f"  all targets detected: {found}")
    print()

    # ------------------------------------------------- sustained CPI rates
    model = AnalyticModel()
    print("Coherent processing intervals per second (2048 x 2048 CPI):")
    for name, system in (
        ("baseline", model.baseline_system(2048)),
        ("optimized", model.optimized_system(2048)),
    ):
        cpi_per_s = 1e9 / system.total_time_ns
        print(
            f"  {name:9s}: {cpi_per_s:8.2f} CPI/s, "
            f"first output after {system.latency_ns / 1e3:.1f} us of phase 2"
        )


if __name__ == "__main__":
    main()
