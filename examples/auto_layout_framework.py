#!/usr/bin/env python
"""The paper's future work, built: automatic data-layout optimization.

The conclusion of the paper promises "a design framework targeted at
throughput-oriented signal processing kernels, which enables automatic
data layout optimizations addressing new 3D memory technologies".  This
example drives that framework: describe a kernel's access phases, let the
planner score every candidate layout against the memory model, and read
off the chosen layouts -- for the paper's 2D FFT, for matrix
transposition, and for the blocked matrix multiplication of the authors'
companion papers.  It then re-plans the FFT for a hypothetical future
stack with a 4x slower row cycle to show the plan adapting.

Run:  python examples/auto_layout_framework.py
"""

from repro.framework import (
    LayoutPlanner,
    fft2d_spec,
    matmul_spec,
    transpose_spec,
)
from repro.memory3d import Memory3DConfig, TimingParameters, pact15_hmc_config


def main() -> None:
    planner = LayoutPlanner(pact15_hmc_config(), sample_requests=65_536)

    for spec in (fft2d_spec(2048), transpose_spec(2048), matmul_spec(2048)):
        print(spec.describe())
        plan = planner.plan(spec)
        print(plan.describe())
        for label, planned in plan.matrices.items():
            top = ", ".join(
                f"{name} {gbps / 1e9:.0f}GB/s" for name, gbps in planned.ranking[:3]
            )
            print(f"    top candidates for {label}: {top}")
        print()

    # ------------------------------ a future memory: 4x slower row cycle
    future = Memory3DConfig(
        timing=TimingParameters(
            t_in_row=1.6, t_in_vault=4.8, t_diff_bank=10.0, t_diff_row=80.0
        )
    )
    print("re-planning the 2D FFT for a stack with t_diff_row = 80 ns,")
    print("with NO permutation network (column streams read h at a time):")
    from repro.framework import AccessPattern, KernelSpec, PhaseSpec

    spec = KernelSpec(
        name="fft2d-2048-no-network",
        matrices={"intermediate": (2048, 2048)},
        phases=(
            PhaseSpec("row writes", "intermediate", AccessPattern.ROW_WALK,
                      is_write=True, block_reorder=False),
            PhaseSpec("column reads", "intermediate", AccessPattern.COLUMN_WALK,
                      block_reorder=False),
        ),
    )
    for name, config in (("today (20 ns)", pact15_hmc_config()),
                         ("future (80 ns)", future)):
        plan = LayoutPlanner(config, sample_requests=65_536).plan(spec)
        chosen = plan.matrices["intermediate"]
        print(f"  {name}: {chosen.layout_name} "
              f"({chosen.throughput_bytes_per_s / 1e9:.1f} GB/s)")


if __name__ == "__main__":
    main()
