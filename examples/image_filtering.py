#!/usr/bin/env python
"""Image processing on the 3D MI-FPGA: frequency-domain filtering.

The paper's introduction motivates the architecture with image-processing
workloads.  This example runs the library's frequency-domain filtering
pipeline (``repro.apps.convolution``) -- forward 2D FFT through the
*optimized architecture's full data path*, Gaussian low-pass, inverse
transform -- then uses the system model to compare the frame rates the
baseline and optimized architectures would sustain on a camera stream.

Run:  python examples/image_filtering.py
"""

import numpy as np

from repro import AnalyticModel, OptimizedArchitecture
from repro.apps import filter_image, gaussian_lowpass_response


def synthetic_image(n: int) -> np.ndarray:
    """A test card: smooth gradients plus sharp edges plus noise."""
    rng = np.random.default_rng(42)
    y, x = np.mgrid[0:n, 0:n] / n
    image = 0.5 + 0.3 * np.sin(4 * np.pi * x) * np.cos(2 * np.pi * y)
    image[n // 4 : n // 2, n // 4 : n // 2] += 0.4  # a bright square
    image += 0.1 * rng.standard_normal((n, n))  # sensor noise
    return image


def main() -> None:
    n = 256
    image = synthetic_image(n)
    arch = OptimizedArchitecture(n)

    filtered = filter_image(image, sigma=0.08, architecture=arch)

    print(f"{n}x{n} Gaussian low-pass via the optimized 2D FFT data path")
    print(f"  image std before: {np.std(image - image.mean()):.4f}")
    print(f"  image std after : {np.std(filtered - filtered.mean()):.4f} "
          "(high frequencies removed)")

    # Sanity: the library pipeline equals direct numpy filtering.
    reference = np.fft.ifft2(
        np.fft.fft2(image) * gaussian_lowpass_response(n, 0.08)
    ).real
    print("  max |error| vs numpy pipeline: "
          f"{np.max(np.abs(filtered - reference)):.2e}")
    print()

    # ---------------------------------------- what frame rate would we get?
    model = AnalyticModel()
    print("Sustained frame rates for a 2048x2048 video stream (two FFTs/frame):")
    for name, system in (
        ("baseline", model.baseline_system(2048)),
        ("optimized", model.optimized_system(2048)),
    ):
        frame_ns = 2 * system.total_time_ns  # forward + inverse transform
        print(
            f"  {name:9s}: {1e9 / frame_ns:8.2f} frames/s "
            f"({system.throughput_gbps:.2f} GB/s application throughput)"
        )


if __name__ == "__main__":
    main()
