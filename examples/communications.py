#!/usr/bin/env python
"""Communications on the streaming FFT kernel: an OFDM link.

Every OFDM symbol is one inverse FFT at the transmitter and one forward
FFT at the receiver -- contiguous streaming transforms, the 1D kernel's
ideal diet.  This example runs a QPSK-over-OFDM link through an AWGN
channel at several SNRs, measures bit error rates, and then inspects the
received waveform with the library's spectrogram.

Run:  python examples/communications.py
"""

import numpy as np

from repro.apps import (
    OFDMConfig,
    OFDMModem,
    awgn_channel,
    bit_error_rate,
    spectrogram,
)
from repro.viz import sparkline


def main() -> None:
    config = OFDMConfig(n_subcarriers=1024, cyclic_prefix=64)
    modem = OFDMModem(config)
    rng = np.random.default_rng(11)

    symbols = 20
    bits_per_symbol = 2 * config.n_subcarriers
    sent_bits = rng.integers(0, 2, size=symbols * bits_per_symbol)

    # Modulate the whole burst (one IFFT per symbol).
    tx = np.concatenate([
        modem.transmit_bits(
            sent_bits[i * bits_per_symbol : (i + 1) * bits_per_symbol]
        )
        for i in range(symbols)
    ])
    print(f"transmitted {symbols} OFDM symbols "
          f"({sent_bits.size} bits, {tx.size} samples, "
          f"CP={config.cyclic_prefix})")

    # Sweep channel quality.
    print("\nbit error rate vs channel SNR:")
    for snr_db in (0.0, 5.0, 10.0, 20.0):
        rx = awgn_channel(tx, snr_db=snr_db, seed=3)
        received_bits = np.concatenate([
            modem.receive_bits(
                rx[i * config.symbol_samples : (i + 1) * config.symbol_samples]
            )
            for i in range(symbols)
        ])
        ber = bit_error_rate(sent_bits, received_bits)
        print(f"  {snr_db:5.1f} dB: BER = {ber:.4f}")

    # A spectral look at the received waveform.
    rx = awgn_channel(tx, snr_db=15.0, seed=3)
    power = spectrogram(rx, frame=256, hop=256)
    occupancy = (power.mean(axis=0) > power.mean() - 3).mean()
    profile = power.mean(axis=0)
    print(f"\nreceived-signal band occupancy: {occupancy:.0%} of bins active")
    print("mean spectral profile: "
          f"{sparkline(profile[::16].tolist())}")


if __name__ == "__main__":
    main()
